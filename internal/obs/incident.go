package obs

import (
	"fmt"
	"strings"

	"github.com/mcn-arch/mcn/internal/sim"
)

// SLO burn-rate monitor and incident attribution. Everything here runs
// post-hoc in Finalize over the per-window integer tallies, so alerts
// and incident reports are pure functions of the (deterministic) event
// stream: the same seed replays the same bytes.

// AlertEvent is one burn-rate monitor transition. T is the closing edge
// of the window that tripped it, in integer picoseconds.
type AlertEvent struct {
	TPs       int64   `json:"t_ps"`
	State     string  `json:"state"` // "firing" or "resolved"
	Window    int     `json:"window"`
	ShortBurn float64 `json:"short_burn"`
	LongBurn  float64 `json:"long_burn"`
}

// Incident is one contiguous firing episode joined against the fault,
// breaker, replication and transport timelines. Durations are
// nanoseconds; -1 marks "not observed" (no fault to attribute, alert
// still firing at run end, no breaker opened).
type Incident struct {
	StartPs       int64   `json:"start_ps"`
	EndPs         int64   `json:"end_ps"`
	Windows       int     `json:"windows"`
	PeakShortBurn float64 `json:"peak_short_burn"`
	Cause         string  `json:"cause"`
	FaultStartPs  int64   `json:"fault_start_ps"`
	FaultEndPs    int64   `json:"fault_end_ps"`
	DetectNs      float64 `json:"detect_ns"`
	RecoverNs     float64 `json:"recover_ns"`
	BurnNs        float64 `json:"burn_ns"`
	BreakerOpenNs float64 `json:"breaker_open_ns"`
	FailoverReads int64   `json:"failover_reads"`
	CreditStalls  int64   `json:"credit_stalls"`
	Resends       int64   `json:"resends"`
	Shed          int64   `json:"shed"`
	Rerouted      int64   `json:"rerouted"`
}

// Alerts returns the burn-rate monitor's event stream (Finalize runs if
// it has not yet).
func (tl *Timeline) Alerts() []AlertEvent {
	tl.Finalize()
	return tl.alerts
}

// Incidents returns the attributed incident list.
func (tl *Timeline) Incidents() []Incident {
	tl.Finalize()
	return tl.incidents
}

// Finalize derives the per-window burn rates, runs the multi-window
// alert state machine, and attributes each firing episode against the
// fault/breaker/replication/transport timelines. Idempotent; hooks must
// not be called after it.
func (tl *Timeline) Finalize() {
	if tl == nil || tl.finalized {
		return
	}
	tl.finalized = true

	n := len(tl.windows)
	if n == 0 {
		return
	}

	// Breaker occupancy: replay the health timeline, recording how many
	// breakers sit open at each window's closing edge.
	tl.fillBreakersOpen()

	// Per-window trailing burns + the firing/resolved state machine.
	shortN := max(1, int(tl.cfg.Short/tl.cfg.Interval))
	longN := max(1, int(tl.cfg.Long/tl.cfg.Interval))
	firing := false
	fireIdx := -1
	flush := func(endIdx int, resolvedIdx int) {
		tl.incidents = append(tl.incidents, tl.attribute(fireIdx, endIdx, resolvedIdx))
	}
	for i, w := range tl.windows {
		w.ShortBurn = tl.burnOver(i-shortN+1, i)
		w.LongBurn = tl.burnOver(i-longN+1, i)
		edge := int64(tl.start.Add(sim.Duration(i+1) * tl.cfg.Interval))
		switch {
		case !firing && w.ShortBurn >= tl.cfg.FireBurn && w.LongBurn >= tl.cfg.LongFire:
			firing, fireIdx = true, i
			tl.alerts = append(tl.alerts, AlertEvent{
				TPs: edge, State: "firing", Window: i,
				ShortBurn: w.ShortBurn, LongBurn: w.LongBurn,
			})
		case firing && w.ShortBurn < tl.cfg.ClearBurn:
			firing = false
			tl.alerts = append(tl.alerts, AlertEvent{
				TPs: edge, State: "resolved", Window: i,
				ShortBurn: w.ShortBurn, LongBurn: w.LongBurn,
			})
			flush(i, i)
		}
	}
	if firing {
		flush(n-1, -1) // still burning at run end
	}
}

// burnOver computes the burn rate of windows [lo, hi]: the bad-request
// fraction over the error budget. Requests that never completed inside
// the SLO path (errors, sheds) are bad; so are completions over the
// latency objective.
func (tl *Timeline) burnOver(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	var bad, total int64
	for i := lo; i <= hi && i < len(tl.windows); i++ {
		w := tl.windows[i]
		bad += w.SLOViol + w.Errors + w.Shed
		total += w.Completed + w.Errors + w.Shed
	}
	if total == 0 {
		return 0
	}
	return float64(bad) / float64(total) / tl.cfg.Budget
}

// fillBreakersOpen replays the admit health timeline into a per-window
// open-breaker gauge (value at each window's closing edge).
func (tl *Timeline) fillBreakersOpen() {
	var open int64
	ev := 0
	for i, w := range tl.windows {
		edge := tl.start.Add(sim.Duration(i+1) * tl.cfg.Interval)
		for ev < len(tl.health) && tl.health[ev].T < edge {
			e := tl.health[ev]
			if e.To == "open" {
				open++
			}
			if e.From == "open" {
				open--
			}
			ev++
		}
		w.BreakersOpen = open
	}
}

// attribute joins one firing episode [fireIdx, endIdx] against the fault
// and subsystem timelines. resolvedIdx is -1 when the alert never
// resolved.
func (tl *Timeline) attribute(fireIdx, endIdx, resolvedIdx int) Incident {
	winPs := int64(tl.cfg.Interval)
	startPs := int64(tl.start) + int64(fireIdx)*winPs
	endPs := int64(tl.start) + int64(endIdx+1)*winPs
	inc := Incident{
		StartPs: startPs, EndPs: endPs,
		Windows:      endIdx - fireIdx + 1,
		Cause:        "unattributed",
		FaultStartPs: -1, FaultEndPs: -1,
		DetectNs: -1, RecoverNs: -1,
		BreakerOpenNs: -1,
		BurnNs:        float64(endPs-startPs) / 1e3,
	}
	for i := fireIdx; i <= endIdx && i < len(tl.windows); i++ {
		w := tl.windows[i]
		if w.ShortBurn > inc.PeakShortBurn {
			inc.PeakShortBurn = w.ShortBurn
		}
		inc.FailoverReads += w.FailedOver
		inc.Shed += w.Shed
		inc.Rerouted += w.Rerouted
	}
	inc.CreditStalls = tl.seriesSum("mcnt/credit_stalls", fireIdx, endIdx)
	inc.Resends = tl.seriesSum("mcnt/resent", fireIdx, endIdx)

	// Cause: the fault whose window overlaps the episode (looking back
	// one short-burn span, since detection trails injection), else the
	// latest fault that started before the episode.
	lookback := startPs - int64(tl.cfg.Short)
	var cause *FaultWindow
	for i := range tl.faults {
		f := &tl.faults[i]
		if f.StartPs < endPs && f.EndPs > lookback {
			cause = f
			break
		}
	}
	if cause == nil {
		for i := range tl.faults {
			f := &tl.faults[i]
			if f.StartPs <= startPs && (cause == nil || f.StartPs > cause.StartPs) {
				cause = f
			}
		}
	}
	if cause != nil {
		inc.Cause = cause.Name + " offline"
		inc.FaultStartPs, inc.FaultEndPs = cause.StartPs, cause.EndPs
		// Detection latency: firing edge minus fault injection.
		fireEdge := int64(tl.start) + int64(fireIdx+1)*winPs
		inc.DetectNs = float64(fireEdge-cause.StartPs) / 1e3
		if resolvedIdx >= 0 {
			resolveEdge := int64(tl.start) + int64(resolvedIdx+1)*winPs
			inc.RecoverNs = float64(resolveEdge-cause.EndPs) / 1e3
		}
		// First breaker to open at or after the fault.
		for _, e := range tl.health {
			if e.To == "open" && int64(e.T) >= cause.StartPs {
				inc.BreakerOpenNs = float64(int64(e.T)-cause.StartPs) / 1e3
				break
			}
		}
	}
	return inc
}

// msRel renders a picosecond stamp as milliseconds relative to the
// timeline start, one decimal — the incident report's time base.
func (tl *Timeline) msRel(ps int64) string {
	return fmt.Sprintf("%.1f", float64(ps-int64(tl.start))/1e9)
}

// Report renders one line per incident, fixed format, byte-stable
// across replays:
//
//	window [12.0,14.1]ms: p99 burn 46.0x, cause: host/mcn3 offline;
//	breaker open +210.0µs, failover reads 41, credit stalls 9,
//	resends 12, shed 13, rerouted 57, detected +1.2ms, recovered +2.1ms
func (tl *Timeline) Report() string {
	tl.Finalize()
	if len(tl.incidents) == 0 {
		return "no incidents\n"
	}
	var b strings.Builder
	for _, inc := range tl.incidents {
		fmt.Fprintf(&b, "window [%s,%s]ms: p99 burn %.1fx, cause: %s",
			tl.msRel(inc.StartPs), tl.msRel(inc.EndPs), inc.PeakShortBurn, inc.Cause)
		if inc.BreakerOpenNs >= 0 {
			fmt.Fprintf(&b, "; breaker open +%.1fµs", inc.BreakerOpenNs/1e3)
		}
		fmt.Fprintf(&b, ", failover reads %d, credit stalls %d, resends %d, shed %d, rerouted %d",
			inc.FailoverReads, inc.CreditStalls, inc.Resends, inc.Shed, inc.Rerouted)
		if inc.DetectNs >= 0 {
			fmt.Fprintf(&b, ", detected +%.1fms", inc.DetectNs/1e6)
		}
		if inc.RecoverNs >= 0 {
			fmt.Fprintf(&b, ", recovered +%.1fms", inc.RecoverNs/1e6)
		} else {
			b.WriteString(", unrecovered at run end")
		}
		b.WriteString("\n")
	}
	return b.String()
}
