package obs

import (
	"github.com/mcn-arch/mcn/internal/mcnt"
	"github.com/mcn-arch/mcn/internal/netstack"
	"github.com/mcn-arch/mcn/internal/sim"
)

// BindConn registers a connection's transport-level correlation identity
// with its flow. TCP connections need nothing here — they are keyed by
// 4-tuple and the ISS learned from the SYN at a stack tap. An mcnt
// connection has no TCP sequence space, so the tracer keys it by the
// transport's fabric-global stream id instead; the duck-typed probe
// keeps obs free of a hard dependency on any one Conn implementation.
func (t *Tracer) BindConn(conn netstack.Conn, f *Flow) {
	if t == nil || f == nil {
		return
	}
	mc, ok := conn.(interface{ McntStreamID() uint32 })
	if !ok {
		return
	}
	if t.mcntFlows == nil {
		t.mcntFlows = make(map[uint32]*Flow)
	}
	t.mcntFlows[mc.McntStreamID()] = f
}

// mcntFrameEvent correlates one mcnt frame observed at a site back to
// the sampled spans whose bytes it carries. Only data frames sent by the
// stream's dialer (the request direction) stamp; the header's Off field
// is the payload's stream byte offset, so the match against each pending
// span's last request byte is exact — no ISS learning, and resent frames
// re-stamp idempotently (first observation wins).
func (t *Tracer) mcntFrameEvent(site Site, at sim.Time, frame []byte) {
	h, _, ok := mcnt.ParseFrame(frame[netstack.EthHeaderBytes:])
	if !ok || h.Kind != mcnt.KindData || h.Flags&mcnt.FlagFromDialer == 0 {
		return
	}
	f := t.mcntFlows[h.Stream]
	if f == nil || len(f.pending) == 0 {
		return
	}
	off := int64(h.Off)
	end := off + int64(h.Len)
	for _, sp := range f.pending {
		if sp.wantByte >= off && sp.wantByte < end {
			sp.stamp(site, at)
		}
	}
}

// McntHostTx implements mcnt.Tap: the host endpoint handed a data frame
// to a DIMM port — the boundary TCP's host-TX stamp marks.
func (t *Tracer) McntHostTx(at sim.Time, frame []byte) {
	if t == nil {
		return
	}
	t.mcntFrameEvent(SiteHostTx, at, frame)
}

// McntDimmRx implements mcnt.Tap: a DIMM endpoint delivered an in-order
// data frame to its stream — the boundary TCP's stack-delivery stamp
// marks.
func (t *Tracer) McntDimmRx(at sim.Time, frame []byte) {
	if t == nil {
		return
	}
	t.mcntFrameEvent(SiteDimmRx, at, frame)
}

var _ mcnt.Tap = (*Tracer)(nil)
