package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"github.com/mcn-arch/mcn/internal/netstack"
	"github.com/mcn-arch/mcn/internal/sim"
	"github.com/mcn-arch/mcn/internal/stats"
)

func TestRegistryScalars(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a/reqs")
	c.Inc()
	c.Add(4)
	if r.Counter("a/reqs") != c {
		t.Fatal("re-registration must return the same counter")
	}
	g := r.Gauge("a/depth")
	g.Set(7)
	r.GaugeFunc("a/pull", func() int64 { return 11 })
	h := r.HDR("a/lat")
	h.Record(100)
	h.Record(300)
	var ext stats.HDR
	ext.Record(42)
	r.RegisterHDR("a/ext", &ext)
	if r.Len() != 5 {
		t.Fatalf("Len = %d", r.Len())
	}

	s := r.Snapshot(sim.Time(123456))
	if s.AtPs != 123456 {
		t.Fatalf("AtPs = %d", s.AtPs)
	}
	if v, ok := s.Value("a/reqs"); !ok || v != 5 {
		t.Fatalf("a/reqs = %d,%v", v, ok)
	}
	if v, ok := s.Value("a/depth"); !ok || v != 7 {
		t.Fatalf("a/depth = %d,%v", v, ok)
	}
	if v, ok := s.Value("a/pull"); !ok || v != 11 {
		t.Fatalf("a/pull = %d,%v", v, ok)
	}
	if _, ok := s.Value("missing"); ok {
		t.Fatal("missing metric reported present")
	}
	// Sorted, deterministic rendering.
	names := make([]string, len(s.Metrics))
	for i, m := range s.Metrics {
		names[i] = m.Name
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("snapshot not sorted: %v", names)
		}
	}
	var b1, b2 bytes.Buffer
	if err := s.WriteJSON(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.Snapshot(sim.Time(123456)).WriteJSON(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("snapshot JSON not deterministic")
	}
	var parsed Snapshot
	if err := json.Unmarshal(b1.Bytes(), &parsed); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if !strings.Contains(s.String(), "a/lat") {
		t.Fatal("table rendering missing HDR row")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x")
}

func TestSamplerRateAndDeterminism(t *testing.T) {
	tr := NewTracer(42, 8, 0)
	hits := 0
	s := tr.Sampler("gen/0/0")
	for i := 0; i < 8000; i++ {
		if s.Next() {
			hits++
		}
	}
	if hits < 800 || hits > 1200 {
		t.Fatalf("1-in-8 sampler hit %d/8000", hits)
	}
	// Same seed and stream name, same decisions.
	s2 := NewTracer(42, 8, 0).Sampler("gen/0/0")
	s3 := tr.Sampler("gen/0/0")
	for i := 0; i < 1000; i++ {
		a, b := s2.Next(), s3.Next()
		if a != b {
			t.Fatalf("sampler diverged at %d", i)
		}
	}
	// SampleN <= 1 traces everything; a nil sampler traces nothing.
	always := NewTracer(1, 1, 0).Sampler("x")
	if !always.Next() {
		t.Fatal("SampleN=1 must sample")
	}
	var nilS *Sampler
	if nilS.Next() {
		t.Fatal("nil sampler sampled")
	}
}

func TestBreakdownTelescopes(t *testing.T) {
	us := func(n int64) sim.Time { return sim.Time(n * int64(sim.Microsecond)) }
	sp := &Span{
		Arrival: us(10), Deq: us(11), Sent: us(12), HostTx: us(13),
		ChanPush: us(15), DimmPop: us(16), DimmRx: us(17), Served: us(20), Done: us(25),
	}
	b := sp.Breakdown()
	var sum sim.Duration
	for _, d := range b {
		sum += d
	}
	if sum != sp.Done.Sub(sp.Arrival) {
		t.Fatalf("sum %v != end-to-end %v", sum, sp.Done.Sub(sp.Arrival))
	}
	if b[PhaseChannelWait] != sim.Duration(sim.Microsecond) {
		t.Fatalf("ChannelWait = %v", b[PhaseChannelWait])
	}

	// Missing boundaries forward-fill: a 10gbe-style span with no channel
	// stamps still telescopes, the missing phases at zero width.
	sp2 := &Span{Arrival: us(10), Deq: us(11), Sent: us(12), HostTx: us(14), Served: us(20), Done: us(24)}
	b2 := sp2.Breakdown()
	sum = 0
	for _, d := range b2 {
		sum += d
	}
	if sum != sp2.Done.Sub(sp2.Arrival) {
		t.Fatalf("forward-fill sum %v != %v", sum, sp2.Done.Sub(sp2.Arrival))
	}
	if b2[PhaseWire] != 0 || b2[PhaseChannelWait] != 0 || b2[PhaseDimmIRQ] != 0 {
		t.Fatalf("missing phases not zero-width: %v", b2)
	}
	if b2[PhaseDimmService] != sim.Duration(6*sim.Microsecond) {
		t.Fatalf("DimmService absorbed wrong width: %v", b2[PhaseDimmService])
	}

	// Out-of-order stamps clamp monotone instead of going negative.
	sp3 := &Span{Arrival: us(10), Deq: us(12), Sent: us(11), Done: us(13)}
	for _, d := range sp3.Breakdown() {
		if d < 0 {
			t.Fatalf("negative phase: %v", sp3.Breakdown())
		}
	}
	if PhaseWire.String() != "Wire" || Phase(99).String() != "?" {
		t.Fatal("phase names")
	}
}

// tcpFrame synthesizes a full Ethernet+IPv4+TCP frame the way the stack
// puts them on the wire.
func tcpFrame(src, dst netstack.IP, sport, dport uint16, seq uint32, flags uint8, payload []byte) []byte {
	n := netstack.EthHeaderBytes + netstack.IPv4HeaderBytes + netstack.TCPHeaderBytes + len(payload)
	f := make([]byte, n)
	netstack.PutEth(f, netstack.EthHeader{Type: netstack.EtherTypeIPv4})
	netstack.PutIPv4(f[netstack.EthHeaderBytes:], netstack.IPv4Header{
		TotalLen: uint16(n - netstack.EthHeaderBytes),
		TTL:      64, Proto: netstack.ProtoTCP, Src: src, Dst: dst,
	})
	netstack.PutTCP(f[netstack.EthHeaderBytes+netstack.IPv4HeaderBytes:], netstack.TCPHeader{
		SrcPort: sport, DstPort: dport, Seq: seq, Flags: flags,
	}, src, dst, payload)
	copy(f[netstack.EthHeaderBytes+netstack.IPv4HeaderBytes+netstack.TCPHeaderBytes:], payload)
	return f
}

func TestFrameCorrelation(t *testing.T) {
	cip, sip := netstack.IPv4(10, 0, 0, 1), netstack.IPv4(10, 0, 0, 2)
	tr := NewTracer(1, 1, 0)

	// SYN observed before the flow opens (the tap sees the handshake
	// while Connect is still blocked) teaches the ISS via pendingISS.
	iss := uint32(1)
	tr.FrameEvent(SiteHostTx, sim.Time(100), tcpFrame(cip, sip, 4000, 11211, iss, netstack.TCPSyn, nil))
	f := tr.OpenFlow(cip, 4000, sip, 11211)
	if !f.issKnown || f.iss != iss {
		t.Fatalf("ISS not learned: %+v", f)
	}
	if f.Index() != 0 {
		t.Fatalf("flow index %d", f.Index())
	}

	// Two requests of 10 bytes each queued into one batch.
	sp1 := tr.Start(sim.Time(1000), 0, 0)
	sp2 := tr.Start(sim.Time(1100), 0, 0)
	f.Queued(sp1, 9, sim.Time(1200), sim.Time(1300))
	f.Queued(nil, 14, sim.Time(1200), sim.Time(1300)) // unsampled rides along
	f.Queued(sp2, 24, sim.Time(1250), sim.Time(1300))
	f.Advance(25)
	if sp1.Seq != 0 || sp2.Seq != 2 {
		t.Fatalf("seq %d,%d", sp1.Seq, sp2.Seq)
	}

	// A segment carrying stream bytes [0,20) covers sp1's last byte only.
	// First data byte of the stream is seq iss+1.
	tr.FrameEvent(SiteHostTx, sim.Time(2000), tcpFrame(cip, sip, 4000, 11211, iss+1, netstack.TCPAck, make([]byte, 20)))
	if sp1.HostTx != sim.Time(2000) {
		t.Fatalf("sp1.HostTx = %v", sp1.HostTx)
	}
	if sp2.HostTx != 0 {
		t.Fatalf("sp2 stamped early: %v", sp2.HostTx)
	}
	// The rest of the batch; a retransmit must not overwrite sp1.
	tr.FrameEvent(SiteChanPush, sim.Time(2100), tcpFrame(cip, sip, 4000, 11211, iss+21, netstack.TCPAck, make([]byte, 5)))
	tr.FrameEvent(SiteHostTx, sim.Time(2200), tcpFrame(cip, sip, 4000, 11211, iss+1, netstack.TCPAck, make([]byte, 25)))
	if sp1.HostTx != sim.Time(2000) {
		t.Fatal("retransmit overwrote first stamp")
	}
	if sp2.HostTx != sim.Time(2200) || sp2.ChanPush != sim.Time(2100) {
		t.Fatalf("sp2 stamps: %v %v", sp2.HostTx, sp2.ChanPush)
	}

	// The driver-tap methods route to the right sites.
	tr.DimmPop(sim.Time(2300), tcpFrame(cip, sip, 4000, 11211, iss+1, netstack.TCPAck, make([]byte, 25)))
	if sp1.DimmPop != sim.Time(2300) || sp2.DimmPop != sim.Time(2300) {
		t.Fatalf("DimmPop stamps: %v %v", sp1.DimmPop, sp2.DimmPop)
	}
	tr.ChanPush(sim.Time(2250), tcpFrame(cip, sip, 4000, 11211, iss+1, netstack.TCPAck, make([]byte, 10)))
	if sp1.ChanPush != sim.Time(2250) {
		t.Fatalf("sp1.ChanPush = %v", sp1.ChanPush)
	}

	// Server-side FIFO index matches the span's sequence.
	tr.ServerMark(cip, 4000, sip, 11211, 0, sim.Time(3000))
	tr.ServerMark(cip, 4000, sip, 11211, 1, sim.Time(3100)) // the unsampled one
	tr.ServerMark(cip, 4000, sip, 11211, 2, sim.Time(3200))
	if sp1.Served != sim.Time(3000) || sp2.Served != sim.Time(3200) {
		t.Fatalf("Served: %v %v", sp1.Served, sp2.Served)
	}

	// Finishing removes the spans from the flow and aggregates them.
	tr.Finish(sp1, sim.Time(4000), true, true)
	tr.Finish(sp2, sim.Time(4100), true, true)
	if len(f.pending) != 0 {
		t.Fatalf("pending not drained: %d", len(f.pending))
	}
	if tr.Total.N() != 2 || len(tr.Spans()) != 2 {
		t.Fatalf("aggregates: n=%d spans=%d", tr.Total.N(), len(tr.Spans()))
	}

	// Frames the tracer must ignore: non-IP, fragments, pure ACKs,
	// unknown flows.
	tr.FrameEvent(SiteHostTx, 1, []byte{1, 2, 3})
	arp := tcpFrame(cip, sip, 4000, 11211, 5, 0, nil)
	netstack.PutEth(arp, netstack.EthHeader{Type: netstack.EtherTypeARP})
	tr.FrameEvent(SiteHostTx, 1, arp)
	tr.FrameEvent(SiteHostTx, 1, tcpFrame(sip, cip, 11211, 4000, 9, netstack.TCPAck, make([]byte, 4)))
	tr.ServerMark(cip, 4000, sip, 9999, 0, 1) // unknown flow
}

func TestTracerLifecycleAndLimits(t *testing.T) {
	tr := NewTracer(3, 1, 2) // retain at most 2 spans
	f := tr.OpenFlow(netstack.IPv4(1, 1, 1, 1), 1, netstack.IPv4(2, 2, 2, 2), 2)
	for i := 0; i < 4; i++ {
		sp := tr.Start(sim.Time(i*1000), 0, 0)
		f.Queued(sp, int64(i*10+9), sim.Time(i*1000+1), sim.Time(i*1000+2))
		tr.Finish(sp, sim.Time(i*1000+500), true, true)
	}
	if len(tr.Spans()) != 2 || tr.DroppedSpans != 2 {
		t.Fatalf("retention: %d spans, %d dropped", len(tr.Spans()), tr.DroppedSpans)
	}
	if tr.Total.N() != 4 {
		t.Fatal("aggregation must continue past the retention cap")
	}
	sp := tr.Start(sim.Time(9000), 0, 0)
	f.Queued(sp, 99, 9001, 9002)
	tr.Abort(sp)
	if tr.Aborted != 1 || len(f.pending) != 0 {
		t.Fatalf("abort: %d aborted, %d pending", tr.Aborted, len(f.pending))
	}
	// Errored and out-of-window spans are retained but not aggregated.
	spErr := tr.Start(10000, 0, 0)
	tr.Finish(spErr, 10100, true, false)
	spWarm := tr.Start(10200, 0, 0)
	tr.Finish(spWarm, 10300, false, true)
	if tr.Total.N() != 4 {
		t.Fatalf("err/warmup spans aggregated: n=%d", tr.Total.N())
	}

	// Nil-safety of every entry point tracing-off code hits.
	var nilT *Tracer
	nilT.FrameEvent(SiteHostTx, 0, nil)
	nilT.ServerMark(netstack.IP{}, 0, netstack.IP{}, 0, 0, 0)
	nilT.Finish(nil, 0, true, true)
	nilT.Abort(nil)
	if nilT.OpenFlow(netstack.IP{}, 0, netstack.IP{}, 0) != nil {
		t.Fatal("nil tracer opened a flow")
	}
	var nilF *Flow
	nilF.Queued(nil, 0, 0, 0)
	nilF.Advance(10)
}

func TestStackTapDirections(t *testing.T) {
	cip, sip := netstack.IPv4(10, 0, 0, 1), netstack.IPv4(10, 0, 0, 2)
	mk := func() (*Tracer, *Span) {
		tr := NewTracer(1, 1, 0)
		tr.FrameEvent(SiteHostTx, 1, tcpFrame(cip, sip, 5, 6, 1, netstack.TCPSyn, nil))
		f := tr.OpenFlow(cip, 5, sip, 6)
		sp := tr.Start(10, 0, 0)
		f.Queued(sp, 7, 11, 12)
		return tr, sp
	}
	data := tcpFrame(cip, sip, 5, 6, 2, netstack.TCPAck, make([]byte, 8))

	var chained []string
	tr, sp := mk()
	tap := &StackTap{T: tr, Chain: tapFunc(func(dir string) { chained = append(chained, dir) })}
	tap.Packet(100, "tx", "eth0", data)
	if sp.HostTx != 100 || sp.DimmRx != 0 {
		t.Fatalf("tx: %v %v", sp.HostTx, sp.DimmRx)
	}
	tap.Packet(200, "rx", "eth0", data)
	if sp.DimmRx != 200 {
		t.Fatalf("rx: %v", sp.DimmRx)
	}
	if len(chained) != 2 {
		t.Fatalf("chain not called: %v", chained)
	}

	// Loopback stamps both ends at once (scale-up box: no fabric).
	tr2, sp2 := mk()
	(&StackTap{T: tr2}).Packet(300, "lo", "lo", data)
	if sp2.HostTx != 300 || sp2.DimmRx != 300 {
		t.Fatalf("lo: %v %v", sp2.HostTx, sp2.DimmRx)
	}
}

type tapFunc func(dir string)

func (f tapFunc) Packet(_ sim.Time, dir, _ string, _ []byte) { f(dir) }

func TestWritePerfettoSchema(t *testing.T) {
	cip, sip := netstack.IPv4(10, 0, 0, 1), netstack.IPv4(10, 0, 0, 2)
	tr := NewTracer(1, 1, 0)
	tr.FrameEvent(SiteHostTx, 1, tcpFrame(cip, sip, 5, 6, 1, netstack.TCPSyn, nil))
	f := tr.OpenFlow(cip, 5, sip, 6)
	us := func(n int64) sim.Time { return sim.Time(n * int64(sim.Microsecond)) }
	sp := tr.Start(us(1), 2, 0)
	sp.Shard = 3
	f.Queued(sp, 9, us(2), us(3))
	sp.HostTx, sp.ChanPush, sp.DimmPop, sp.DimmRx, sp.Served = us(4), us(5), us(6), us(7), us(8)
	tr.Finish(sp, us(9), true, true)
	spErr := tr.Start(us(10), 2, 1)
	tr.Finish(spErr, us(11), true, false)

	var buf bytes.Buffer
	if err := tr.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Pid  int             `json:"pid"`
			Tid  int             `json:"tid"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Name string          `json:"name"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace JSON invalid: %v\n%s", err, buf.String())
	}
	var meta, slices int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta++
		case "X":
			slices++
			if e.Dur <= 0 || e.Pid < pidClient || e.Pid > pidDimm {
				t.Fatalf("bad slice: %+v", e)
			}
		default:
			t.Fatalf("unexpected ph %q", e.Ph)
		}
	}
	if meta == 0 || slices == 0 {
		t.Fatalf("meta=%d slices=%d", meta, slices)
	}
	// 1 whole-request + 8 phases for the stamped span; the errored span
	// adds its whole-request slice plus one phase — with no boundary
	// stamped, forward-fill telescopes its whole latency into the final
	// ReturnPath phase.
	if slices != 1+int(NumPhases)+2 {
		t.Fatalf("slices = %d", slices)
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := tr.WritePerfetto(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Perfetto output not deterministic")
	}
	if err := (*Tracer)(nil).WritePerfetto(&buf); err == nil {
		t.Fatal("nil tracer must error")
	}
	if len(tr.Attribution()) != int(NumPhases)+1 {
		t.Fatal("attribution rows")
	}
}
