// Package sram implements the MCN interface's 96KB SRAM communication
// buffer with the layout of Fig. 4 in the paper: a circular TX buffer and a
// circular RX buffer, each described by start/end byte pointers, plus the
// tx-poll and rx-poll handshake fields.
//
// Messages stored in the rings are "MCN messages": a 4-byte length header
// followed by the packet bytes. This framing is what lets MCN carry any MTU
// (Sec. IV-A) — nothing in the ring format assumes 1.5KB Ethernet frames.
//
// The package is a pure data structure; the timing of accesses to it (over
// the host's global memory channel or the MCN processor's interconnect) is
// charged by the driver models in internal/core.
package sram

import "encoding/binary"

// DefaultSize is the SRAM buffer capacity used by the paper's MCN
// interface.
const DefaultSize = 96 * 1024

// HeaderBytes is the length-prefix size of an MCN message.
const HeaderBytes = 4

// controlBytes reserves space for the tx/rx pointer and poll fields at the
// head of the SRAM, as in Fig. 4.
const controlBytes = 64

// Ring is one circular MCN buffer with start/end pointers. start points at
// the first valid byte, end one past the last valid byte. One byte of
// capacity is sacrificed to distinguish full from empty, as usual for
// pointer-based rings.
type Ring struct {
	data  []byte
	start int
	end   int
}

// NewRing returns a ring with the given capacity in bytes.
func NewRing(capacity int) *Ring {
	if capacity < HeaderBytes+1 {
		panic("sram: ring too small")
	}
	return &Ring{data: make([]byte, capacity)}
}

// Capacity returns the total ring size in bytes (one byte is unusable).
func (r *Ring) Capacity() int { return len(r.data) }

// Used returns the number of valid bytes between start and end.
func (r *Ring) Used() int {
	d := r.end - r.start
	if d < 0 {
		d += len(r.data)
	}
	return d
}

// Free returns the number of bytes that can still be pushed.
func (r *Ring) Free() int { return len(r.data) - 1 - r.Used() }

// Empty reports whether the ring holds no messages.
func (r *Ring) Empty() bool { return r.start == r.end }

// Start and End expose the raw pointers (the driver reads these fields over
// the memory channel in steps T1/R1).
func (r *Ring) Start() int { return r.start }
func (r *Ring) End() int   { return r.end }

// Push appends one MCN message (length header + payload), following the
// paper's transmit steps: write the message at end, then advance end. It
// returns false — the NETDEV_TX_BUSY case — when there is not enough free
// space.
func (r *Ring) Push(packet []byte) bool {
	need := HeaderBytes + len(packet)
	if need > r.Free() {
		return false
	}
	var hdr [HeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(packet)))
	r.write(r.end, hdr[:])
	r.write((r.end+HeaderBytes)%len(r.data), packet)
	r.end = (r.end + need) % len(r.data)
	return true
}

// Peek returns the payload of the oldest message without consuming it, or
// nil if the ring is empty.
func (r *Ring) Peek() []byte { return r.peekWith(stdAlloc) }

func stdAlloc(n int) []byte { return make([]byte, n) }

func (r *Ring) peekWith(alloc func(int) []byte) []byte {
	if r.Empty() {
		return nil
	}
	var hdr [HeaderBytes]byte
	r.read(r.start, hdr[:])
	n := int(binary.LittleEndian.Uint32(hdr[:]))
	out := alloc(n)
	r.read((r.start+HeaderBytes)%len(r.data), out)
	return out
}

// Pop removes and returns the oldest message payload, or nil if empty.
// This is the receive side's R2-R5 walk: read at start, advance start.
func (r *Ring) Pop() []byte { return r.PopWith(stdAlloc) }

// PopWith is Pop with a caller-supplied buffer allocator — the seam the
// drivers use to land popped messages in recycled frame buffers instead
// of fresh garbage-collected ones. alloc(n) must return a buffer of
// length exactly n; every byte is overwritten.
func (r *Ring) PopWith(alloc func(int) []byte) []byte {
	out := r.peekWith(alloc)
	if out == nil {
		return nil
	}
	r.start = (r.start + HeaderBytes + len(out)) % len(r.data)
	return out
}

func (r *Ring) write(off int, b []byte) {
	n := copy(r.data[off:], b)
	if n < len(b) {
		copy(r.data, b[n:])
	}
}

func (r *Ring) read(off int, b []byte) {
	n := copy(b, r.data[off:])
	if n < len(b) {
		copy(b[n:], r.data)
	}
}

// Buffer is the whole MCN interface SRAM: the TX ring (packets the MCN
// processor is sending toward the host), the RX ring (packets the host has
// delivered to the MCN node), and the two poll flags used for handshaking.
type Buffer struct {
	TX *Ring
	RX *Ring
	// TxPoll is set by the MCN-side driver after enqueueing into TX; the
	// host-side polling agent reads and clears it.
	TxPoll bool
	// RxPoll is set by the host-side driver after enqueueing into RX;
	// the MCN interface turns it into an IRQ to the MCN processor.
	RxPoll bool
}

// New returns a Buffer whose rings split the given SRAM size (control words
// deducted) evenly between TX and RX.
func New(size int) *Buffer {
	if size <= controlBytes+2*(HeaderBytes+1) {
		panic("sram: buffer too small")
	}
	half := (size - controlBytes) / 2
	return &Buffer{TX: NewRing(half), RX: NewRing(half)}
}

// NewDefault returns the 96KB buffer of the paper.
func NewDefault() *Buffer { return New(DefaultSize) }
