package sram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestPushPopFIFO(t *testing.T) {
	r := NewRing(1024)
	msgs := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma-gamma")}
	for _, m := range msgs {
		if !r.Push(m) {
			t.Fatalf("push %q failed", m)
		}
	}
	for _, want := range msgs {
		got := r.Pop()
		if !bytes.Equal(got, want) {
			t.Fatalf("pop = %q, want %q", got, want)
		}
	}
	if !r.Empty() {
		t.Fatal("ring should be empty")
	}
	if r.Pop() != nil {
		t.Fatal("pop on empty should be nil")
	}
}

func TestPushFailsWhenFull(t *testing.T) {
	r := NewRing(64)
	big := make([]byte, 60) // 60+4 = 64 > 63 usable
	if r.Push(big) {
		t.Fatal("push should fail: message exactly fills capacity (one byte reserved)")
	}
	ok := r.Push(make([]byte, 59)) // 63 = exactly the usable space
	if !ok {
		t.Fatal("59-byte message should fit in a 64-byte ring")
	}
	if r.Free() != 0 {
		t.Fatalf("free=%d, want 0", r.Free())
	}
	if r.Push([]byte{1}) {
		t.Fatal("push into full ring should report NETDEV_TX_BUSY")
	}
}

func TestWraparound(t *testing.T) {
	r := NewRing(32)
	// Fill and drain repeatedly so start/end wrap several times.
	for i := 0; i < 100; i++ {
		msg := []byte{byte(i), byte(i + 1), byte(i + 2)}
		if !r.Push(msg) {
			t.Fatalf("push %d failed with used=%d", i, r.Used())
		}
		got := r.Pop()
		if !bytes.Equal(got, msg) {
			t.Fatalf("iteration %d: got %v want %v", i, got, msg)
		}
	}
}

func TestPeekDoesNotConsume(t *testing.T) {
	r := NewRing(128)
	r.Push([]byte("hello"))
	if got := r.Peek(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("peek = %q", got)
	}
	if r.Used() != 9 { // 4 header + 5 payload
		t.Fatalf("used=%d after peek, want 9", r.Used())
	}
	if got := r.Pop(); !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("pop = %q", got)
	}
}

func TestUsedFreeInvariant(t *testing.T) {
	// Property: after any sequence of pushes and pops, Used+Free equals
	// capacity-1 and popped data equals pushed data in order.
	f := func(ops []uint8) bool {
		r := NewRing(256)
		var pending [][]byte
		next := byte(0)
		for _, op := range ops {
			if op%2 == 0 {
				n := int(op/2) % 40
				msg := make([]byte, n)
				for i := range msg {
					msg[i] = next
					next++
				}
				if r.Push(msg) {
					pending = append(pending, msg)
				}
			} else {
				got := r.Pop()
				if len(pending) == 0 {
					if got != nil {
						return false
					}
				} else {
					if !bytes.Equal(got, pending[0]) {
						return false
					}
					pending = pending[1:]
				}
			}
			if r.Used()+r.Free() != r.Capacity()-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	r := NewRing(64)
	if !r.Push(nil) {
		t.Fatal("zero-length message should push")
	}
	got := r.Pop()
	if got == nil || len(got) != 0 {
		t.Fatalf("pop of empty message = %v", got)
	}
}

func TestBufferLayout(t *testing.T) {
	b := NewDefault()
	// 96KB minus control, split evenly.
	want := (DefaultSize - 64) / 2
	if b.TX.Capacity() != want || b.RX.Capacity() != want {
		t.Fatalf("ring capacities %d/%d, want %d", b.TX.Capacity(), b.RX.Capacity(), want)
	}
	// The rings must comfortably hold a 9KB jumbo MCN message plus a TSO
	// chunk; Sec. IV-A requires the buffers to fit the largest chunk the
	// network stack can hand down.
	if b.TX.Free() < 40*1024 {
		t.Fatalf("TX free %d too small for TSO chunks", b.TX.Free())
	}
}

func TestPollFlags(t *testing.T) {
	b := New(4096)
	if b.TxPoll || b.RxPoll {
		t.Fatal("poll flags must start clear")
	}
	b.TX.Push([]byte("pkt"))
	b.TxPoll = true // driver step T3
	if !b.TxPoll {
		t.Fatal("TxPoll lost")
	}
	_ = b.TX.Pop()
	if b.TX.Used() != 0 {
		t.Fatal("ring should drain")
	}
}
