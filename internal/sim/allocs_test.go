package sim

import "testing"

// Steady-state allocation ceilings for the kernel hot path. The event
// arena, free-list, and timer eager-rearm are all pooled, so after warm-up
// a push/pop cycle and a timer rearm must not allocate at all. These run
// under `make check`; a regression here is a regression in events/sec.

func TestAllocsEventPushPop(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	fn := func() {}
	cycle := func() {
		k.At(k.Now().Add(100), fn)
		k.RunUntil(k.Now().Add(200))
	}
	for i := 0; i < 256; i++ {
		cycle() // warm the arena and shell pool
	}
	if avg := testing.AllocsPerRun(512, cycle); avg != 0 {
		t.Fatalf("event push/pop allocates %.2f objects per cycle, want 0", avg)
	}
}

func TestAllocsTimerRearm(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()
	tm := k.NewTimer(func() {})
	rearm := func() {
		tm.Reset(1000)
		tm.Reset(5000)                              // same-level rearm
		tm.Reset(Duration(1) << wheelShifts[1] * 4) // cross-level rearm
		tm.Stop()
	}
	for i := 0; i < 64; i++ {
		rearm()
	}
	if avg := testing.AllocsPerRun(512, rearm); avg != 0 {
		t.Fatalf("timer rearm allocates %.2f objects per cycle, want 0", avg)
	}
}

func TestAllocsWheelHeapSpill(t *testing.T) {
	// Far-future events overflow the wheel into the 4-ary heap; the heap
	// backing array and the arena both pool, so spill/unspill is also free.
	k := NewKernel()
	defer k.Shutdown()
	tm := k.NewTimer(func() {})
	spill := func() {
		tm.Reset(Duration(1) << wheelShifts[2] * 300) // beyond the wheel
		tm.Stop()
	}
	for i := 0; i < 64; i++ {
		spill()
	}
	if avg := testing.AllocsPerRun(512, spill); avg != 0 {
		t.Fatalf("heap spill allocates %.2f objects per cycle, want 0", avg)
	}
}
