package sim

import (
	"container/heap"
	"fmt"
)

// Kernel is the discrete-event simulation engine. Create one with NewKernel,
// start processes with Go, then call Run (or RunUntil / RunFor).
//
// The kernel and all processes cooperate through a strict handoff protocol:
// at any instant exactly one goroutine — either the kernel's event loop or a
// single process — is runnable. All simulation state may therefore be
// accessed without locks.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	yield  chan struct{}
	live   map[*Proc]struct{}
	inRun  bool
	failed any // panic value propagated from a process
}

type event struct {
	at     Time
	seq    uint64
	fn     func()
	proc   *Proc
	gen    uint64 // wait generation the wake targets (proc events only)
	reason WakeReason
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// WakeReason tells a parked process why it resumed.
type WakeReason int

const (
	// WakeDone is the normal wake reason (sleep elapsed, signal fired,
	// resource granted).
	WakeDone WakeReason = iota
	// WakeTimeout indicates a timed wait expired before the awaited
	// condition occurred.
	WakeTimeout
)

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	return &Kernel{
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// At schedules fn to run in kernel context at time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.push(&event{at: t, fn: fn})
}

// After schedules fn to run in kernel context after delay d.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

func (k *Kernel) push(e *event) {
	e.seq = k.seq
	k.seq++
	heap.Push(&k.events, e)
}

func (k *Kernel) scheduleWake(t Time, p *Proc, gen uint64, reason WakeReason) {
	if t < k.now {
		t = k.now
	}
	k.push(&event{at: t, proc: p, gen: gen, reason: reason})
}

// Run executes events until none remain, then returns the final simulated
// time. Processes still blocked at that point stay parked; call Shutdown to
// release their goroutines.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunFor runs the simulation for d more simulated time.
func (k *Kernel) RunFor(d Duration) Time { return k.RunUntil(k.now.Add(d)) }

// RunUntil executes events with timestamps <= limit and returns the
// simulated time at which it stopped (limit, or earlier if the event queue
// drained).
func (k *Kernel) RunUntil(limit Time) Time {
	if k.inRun {
		panic("sim: nested Run")
	}
	k.inRun = true
	defer func() { k.inRun = false }()
	for len(k.events) > 0 {
		e := k.events[0]
		if e.at > limit {
			k.now = limit
			return k.now
		}
		heap.Pop(&k.events)
		k.now = e.at
		switch {
		case e.proc != nil:
			p := e.proc
			if !p.waiting || p.waitGen != e.gen {
				continue // stale wake (e.g. signal raced a timeout)
			}
			p.waiting = false
			p.reason = e.reason
			k.handoff(p)
		case e.fn != nil:
			e.fn()
		}
		if k.failed != nil {
			panic(k.failed)
		}
	}
	if k.now < limit && limit != MaxTime {
		k.now = limit
	}
	return k.now
}

// handoff transfers control to p and blocks until p yields back.
func (k *Kernel) handoff(p *Proc) {
	p.resume <- wake{reason: p.reason}
	<-k.yield
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// LiveProcs returns the number of processes that have been created and not
// yet finished.
func (k *Kernel) LiveProcs() int { return len(k.live) }

// Shutdown aborts every live process so its goroutine exits, and discards
// all pending events. The kernel must not be running. It is safe to call
// Shutdown more than once; after Shutdown the kernel must not be reused.
func (k *Kernel) Shutdown() {
	k.events = nil
	for p := range k.live {
		p.aborted = true
		p.resume <- wake{aborted: true}
		<-k.yield
	}
	if len(k.live) != 0 {
		panic(fmt.Sprintf("sim: %d processes survived shutdown", len(k.live)))
	}
}

// A Timer invokes a callback at a future simulated time unless stopped or
// reset first.
type Timer struct {
	k       *Kernel
	fn      func()
	gen     uint64
	pending bool
	expires Time
}

// NewTimer returns a stopped timer that will call fn in kernel context when
// it fires.
func (k *Kernel) NewTimer(fn func()) *Timer { return &Timer{k: k, fn: fn} }

// Reset (re)arms the timer to fire after d. Any previously scheduled firing
// is cancelled.
func (t *Timer) Reset(d Duration) {
	t.gen++
	t.pending = true
	t.expires = t.k.now.Add(d)
	gen := t.gen
	t.k.At(t.expires, func() {
		if !t.pending || t.gen != gen {
			return
		}
		t.pending = false
		t.fn()
	})
}

// Stop cancels any pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	was := t.pending
	t.pending = false
	t.gen++
	return was
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.pending }

// Expires returns the time the timer will fire if it is pending.
func (t *Timer) Expires() Time { return t.expires }
