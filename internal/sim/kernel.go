package sim

import (
	"fmt"
	"runtime/debug"
)

// Kernel is the discrete-event simulation engine. Create one with NewKernel,
// start processes with Go, then call Run (or RunUntil / RunFor).
//
// The kernel and all processes cooperate through a strict handoff protocol:
// at any instant exactly one goroutine is runnable, and that goroutine owns
// both the simulation state and the event loop itself. When a process
// parks, its goroutine keeps popping events in place; control moves to
// another goroutine only when an event wakes a process hosted elsewhere
// (one channel send per switch), and a process whose own wake comes up
// next resumes with no channel traffic at all. All simulation state may
// therefore be accessed without locks.
type Kernel struct {
	now     Time
	q       eventQueue
	seq     uint64
	limit   Time          // horizon of the Run in progress
	runDone chan struct{} // loop-termination token back to the Run caller
	yield   chan struct{} // shutdown acknowledgement from dying processes
	live    map[*Proc]struct{}
	pool    []*shell
	inRun   bool
	failed  any // panic value propagated from a process
	stats   KernelStats
}

// KernelStats counts scheduler work since the kernel was created. Every
// counter is deterministic for a fixed seed and topology: the values
// depend only on the simulated event stream, never on wall-clock time or
// the Go scheduler, so artifact gates may compare them exactly.
type KernelStats struct {
	Pushes      uint64 // events scheduled (callbacks, wakes, timer arms)
	WheelPushes uint64 // pushes that landed in a timer-wheel level
	Pops        uint64 // events popped and dispatched (incl. stale wakes)
	StaleWakes  uint64 // wake events dropped by the generation check
	ProcWakes   uint64 // wakes delivered to a process
	SelfWakes   uint64 // wakes consumed by the running goroutine directly
	Switches    uint64 // goroutine-to-goroutine control transfers
	Spawns      uint64 // processes created with Go
	Shells      uint64 // goroutines actually created (pool misses)
}

// WakeReason tells a parked process why it resumed.
type WakeReason int

const (
	// WakeDone is the normal wake reason (sleep elapsed, signal fired,
	// resource granted).
	WakeDone WakeReason = iota
	// WakeTimeout indicates a timed wait expired before the awaited
	// condition occurred.
	WakeTimeout
)

// NewKernel returns an empty simulation at time zero.
func NewKernel() *Kernel {
	k := &Kernel{
		runDone: make(chan struct{}),
		yield:   make(chan struct{}),
		live:    make(map[*Proc]struct{}),
	}
	k.q.init()
	return k
}

// Now returns the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Stats returns the scheduler work counters accumulated so far.
func (k *Kernel) Stats() KernelStats { return k.stats }

// PendingEvents returns the number of scheduled events that have not yet
// fired. Cancelled timers do not count: Timer.Stop and Timer.Reset unlink
// their event eagerly instead of leaving a ghost in the queue.
func (k *Kernel) PendingEvents() int { return k.q.size }

// At schedules fn to run in kernel context at time t (clamped to now).
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	idx := k.q.alloc()
	e := &k.q.arena[idx]
	e.at, e.seq, e.fn = t, k.seq, fn
	k.seq++
	k.insert(idx)
}

// After schedules fn to run in kernel context after delay d.
func (k *Kernel) After(d Duration, fn func()) { k.At(k.now.Add(d), fn) }

func (k *Kernel) scheduleWake(t Time, p *Proc, gen uint64, reason WakeReason) {
	if t < k.now {
		t = k.now
	}
	idx := k.q.alloc()
	e := &k.q.arena[idx]
	e.at, e.seq = t, k.seq
	e.proc, e.gen, e.reason = p, gen, reason
	k.seq++
	k.insert(idx)
}

func (k *Kernel) insert(idx int32) {
	k.stats.Pushes++
	if k.q.insert(idx, k.now) {
		k.stats.WheelPushes++
	}
}

// Run executes events until none remain, then returns the final simulated
// time. Processes still blocked at that point stay parked; call Shutdown to
// release their goroutines.
func (k *Kernel) Run() Time { return k.RunUntil(MaxTime) }

// RunFor runs the simulation for d more simulated time.
func (k *Kernel) RunFor(d Duration) Time { return k.RunUntil(k.now.Add(d)) }

// RunUntil executes events with timestamps <= limit and returns the
// simulated time at which it stopped (limit, or earlier if the event queue
// drained).
func (k *Kernel) RunUntil(limit Time) Time {
	if k.inRun {
		panic("sim: nested Run")
	}
	k.inRun = true
	defer func() { k.inRun = false }()
	k.limit = limit
	k.loop(nil)
	if k.failed != nil {
		panic(k.failed)
	}
	if k.now < limit && limit != MaxTime {
		k.now = limit
	}
	return k.now
}

// loop is the event loop, runnable from two contexts: the Run caller
// (self == nil) and any process goroutine that currently owns the
// execution token (self is its shell). It pops events until the run
// terminates or a popped wake belongs to a process hosted on another
// goroutine, in which case the token moves there with a single channel
// send. For a process context the return value is the wake that resumes
// self's occupant — delivered with no channel round-trip at all when the
// occupant's own wake is the next event.
func (k *Kernel) loop(self *shell) wake {
	for {
		idx := k.q.peek(k.now)
		if idx == nilIdx {
			break
		}
		e := &k.q.arena[idx]
		if e.at > k.limit {
			break
		}
		at := e.at
		fn, p, tm := e.fn, e.proc, e.timer
		gen, reason := e.gen, e.reason
		k.q.remove(idx)
		k.q.release(idx)
		k.now = at
		k.stats.Pops++
		switch {
		case p != nil:
			if !p.waiting || p.waitGen != gen {
				k.stats.StaleWakes++
				continue // stale wake (e.g. signal raced a timeout)
			}
			p.waiting = false
			k.stats.ProcWakes++
			w := wake{reason: reason}
			if self != nil && p.shell == self {
				// The next runnable process already lives on this
				// goroutine: resume it in place.
				k.stats.SelfWakes++
				return w
			}
			k.stats.Switches++
			p.shell.resume <- w
			if self == nil {
				<-k.runDone
				return wake{}
			}
			return <-self.resume
		case tm != nil:
			tm.ev = nilIdx
			k.protect(self, tm.fn)
		default:
			k.protect(self, fn)
		}
		if k.failed != nil {
			break
		}
	}
	// The run is over (limit reached, queue drained, or a process
	// failed). Hand the token back to the Run caller.
	if self == nil {
		return wake{}
	}
	k.runDone <- struct{}{}
	return <-self.resume
}

// protect runs an event callback. In the Run caller's context a panic
// propagates as before; on a process goroutine it must not unwind the
// host process's own stack, so it is captured into k.failed and
// re-raised by RunUntil.
func (k *Kernel) protect(self *shell, fn func()) {
	if self == nil {
		fn()
		return
	}
	defer func() {
		if r := recover(); r != nil {
			k.failed = fmt.Sprintf("event callback panicked: %v\n%s", r, debug.Stack())
		}
	}()
	fn()
}

// Idle reports whether no events are pending.
func (k *Kernel) Idle() bool { return k.q.size == 0 }

// LiveProcs returns the number of processes that have been created and not
// yet finished.
func (k *Kernel) LiveProcs() int { return len(k.live) }

// Shutdown aborts every live process so its goroutine exits, releases the
// pooled idle goroutines, and discards all pending events. The kernel must
// not be running. It is safe to call Shutdown more than once; after
// Shutdown the kernel must not be reused.
func (k *Kernel) Shutdown() {
	k.q.init()
	for p := range k.live {
		p.aborted = true
		p.shell.resume <- wake{aborted: true}
		<-k.yield
	}
	if len(k.live) != 0 {
		panic(fmt.Sprintf("sim: %d processes survived shutdown", len(k.live)))
	}
	for _, sh := range k.pool {
		sh.resume <- wake{aborted: true}
	}
	k.pool = nil
}

// A Timer invokes a callback at a future simulated time unless stopped or
// reset first. Stop and Reset unlink the scheduled event immediately, so a
// churning timer (RTO backoff, watchdogs) holds at most one queue entry
// and cancelled firings cost nothing at dispatch time.
type Timer struct {
	k       *Kernel
	fn      func()
	ev      int32 // arena index of the armed event, nilIdx when idle
	expires Time
}

// NewTimer returns a stopped timer that will call fn in kernel context when
// it fires.
func (k *Kernel) NewTimer(fn func()) *Timer { return &Timer{k: k, fn: fn, ev: nilIdx} }

// Reset (re)arms the timer to fire after d. Any previously scheduled firing
// is cancelled.
func (t *Timer) Reset(d Duration) {
	k := t.k
	if t.ev != nilIdx {
		k.q.remove(t.ev)
		k.q.release(t.ev)
	}
	t.expires = k.now.Add(d)
	at := t.expires
	if at < k.now {
		at = k.now
	}
	idx := k.q.alloc()
	e := &k.q.arena[idx]
	e.at, e.seq, e.timer = at, k.seq, t
	k.seq++
	k.insert(idx)
	t.ev = idx
}

// Stop cancels any pending firing. It reports whether a firing was pending.
func (t *Timer) Stop() bool {
	if t.ev == nilIdx {
		return false
	}
	t.k.q.remove(t.ev)
	t.k.q.release(t.ev)
	t.ev = nilIdx
	return true
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.ev != nilIdx }

// Expires returns the time the timer will fire if it is pending.
func (t *Timer) Expires() Time { return t.expires }
