package sim

import (
	"fmt"
	"runtime/debug"
)

// A Proc is a simulated sequential process: a goroutine whose execution is
// interleaved deterministically with all other processes by the kernel. A
// process runs until it blocks (Sleep, Signal.Wait, Resource.Acquire, ...)
// and is resumed when the corresponding event fires.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan wake
	waiting bool
	waitGen uint64
	reason  WakeReason
	aborted bool
	done    bool
}

type wake struct {
	reason  WakeReason
	aborted bool
}

// procAbort is panicked inside an aborted process to unwind it; the wrapper
// installed by Kernel.Go recovers it.
type procAbort struct{}

// Go creates a process named name running fn and schedules it to start at
// the current simulated time. It may be called before Run or from within any
// running process or event callback.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name, resume: make(chan wake)}
	k.live[p] = struct{}{}
	go func() {
		w := <-p.resume
		if !w.aborted {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, isAbort := r.(procAbort); !isAbort {
							// Preserve the origin stack: the panic is
							// re-raised from the kernel's Run loop,
							// which would otherwise hide it.
							k.failed = fmt.Sprintf("process %q panicked: %v\n%s", p.name, r, debug.Stack())
						}
					}
				}()
				fn(p)
			}()
		}
		p.done = true
		delete(k.live, p)
		k.yield <- struct{}{}
	}()
	// The start is delivered like a wake so it obeys event ordering.
	p.waiting = true
	k.scheduleWake(k.now, p, p.waitGen, WakeDone)
	return p
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// prepareWait must be called before arming any wake source; it opens a new
// wait generation so that stale wakes from previous waits are ignored.
func (p *Proc) prepareWait() uint64 {
	p.waitGen++
	p.waiting = true
	return p.waitGen
}

// park yields to the kernel and blocks until a wake for the current
// generation arrives. It returns the reason supplied by the waker.
func (p *Proc) park() WakeReason {
	p.k.yield <- struct{}{}
	w := <-p.resume
	if w.aborted || p.aborted {
		panic(procAbort{})
	}
	return w.reason
}

// Sleep suspends the process for d simulated time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Even a zero-length sleep yields, preserving event ordering
		// relative to other work scheduled at the same instant.
		d = 0
	}
	gen := p.prepareWait()
	p.k.scheduleWake(p.k.now.Add(d), p, gen, WakeDone)
	p.park()
}

// Yield lets every other event scheduled at the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
