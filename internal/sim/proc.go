package sim

import (
	"fmt"
	"runtime/debug"
)

// A Proc is a simulated sequential process: a goroutine whose execution is
// interleaved deterministically with all other processes by the kernel. A
// process runs until it blocks (Sleep, Signal.Wait, Resource.Acquire, ...)
// and is resumed when the corresponding event fires.
type Proc struct {
	k       *Kernel
	name    string
	shell   *shell
	waiting bool
	waitGen uint64
	aborted bool
	done    bool
}

type wake struct {
	reason  WakeReason
	aborted bool
}

// procAbort is panicked inside an aborted process to unwind it; the wrapper
// installed by the shell recovers it.
type procAbort struct{}

// A shell is a reusable goroutine that hosts one process body at a time.
// Short-lived processes (per-packet drains, IRQ handlers) are the common
// case in this simulator, so finished shells park in the kernel's pool
// and the next Go reuses them instead of spawning a goroutine.
type shell struct {
	k      *Kernel
	resume chan wake
	p      *Proc
	body   func(*Proc)
}

// Go creates a process named name running fn and schedules it to start at
// the current simulated time. It may be called before Run or from within any
// running process or event callback.
func (k *Kernel) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{k: k, name: name}
	var sh *shell
	if n := len(k.pool); n > 0 {
		sh = k.pool[n-1]
		k.pool[n-1] = nil
		k.pool = k.pool[:n-1]
	} else {
		sh = &shell{k: k, resume: make(chan wake)}
		k.stats.Shells++
		go sh.run()
	}
	sh.p, sh.body = p, fn
	p.shell = sh
	k.live[p] = struct{}{}
	k.stats.Spawns++
	// The start is delivered like a wake so it obeys event ordering.
	p.waiting = true
	k.scheduleWake(k.now, p, p.waitGen, WakeDone)
	return p
}

// run is the shell goroutine: receive the execution token, run the
// assigned body, then keep driving the event loop in place until the
// token moves on; park in the pool awaiting the next body.
func (sh *shell) run() {
	w := <-sh.resume
	for {
		if w.aborted {
			// Shutdown: either our occupant was aborted before its body
			// ever started, or the shell was idle in the pool.
			if p := sh.p; p != nil {
				p.done = true
				delete(sh.k.live, p)
				sh.k.yield <- struct{}{}
			}
			return
		}
		p := sh.p
		aborted := false
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, isAbort := r.(procAbort); isAbort {
						aborted = true
					} else {
						// Preserve the origin stack: the panic is
						// re-raised from the kernel's Run loop, which
						// would otherwise hide it.
						sh.k.failed = fmt.Sprintf("process %q panicked: %v\n%s", p.name, r, debug.Stack())
					}
				}
			}()
			sh.body(p)
		}()
		sh.body = nil
		sh.p = nil
		p.done = true
		delete(sh.k.live, p)
		if aborted {
			sh.k.yield <- struct{}{}
			return
		}
		// Normal completion mid-run: this goroutine still owns the
		// execution token, so pool the shell and keep popping events.
		// loop returns the start token for the shell's next occupant.
		sh.k.pool = append(sh.k.pool, sh)
		w = sh.k.loop(sh)
	}
}

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now returns the current simulated time.
func (p *Proc) Now() Time { return p.k.now }

// Done reports whether the process function has returned.
func (p *Proc) Done() bool { return p.done }

// prepareWait must be called before arming any wake source; it opens a new
// wait generation so that stale wakes from previous waits are ignored.
func (p *Proc) prepareWait() uint64 {
	p.waitGen++
	p.waiting = true
	return p.waitGen
}

// park blocks until a wake for the current generation arrives, running
// the kernel's event loop on this goroutine in the meantime. It returns
// the reason supplied by the waker.
func (p *Proc) park() WakeReason {
	w := p.k.loop(p.shell)
	if w.aborted || p.aborted {
		panic(procAbort{})
	}
	return w.reason
}

// Sleep suspends the process for d simulated time.
func (p *Proc) Sleep(d Duration) {
	if d <= 0 {
		// Even a zero-length sleep yields, preserving event ordering
		// relative to other work scheduled at the same instant.
		d = 0
	}
	gen := p.prepareWait()
	p.k.scheduleWake(p.k.now.Add(d), p, gen, WakeDone)
	p.park()
}

// Yield lets every other event scheduled at the current instant run before
// the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
