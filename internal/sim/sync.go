package sim

// waiterRef identifies a parked process at a particular wait generation.
// A wake delivered for a stale generation is discarded by the kernel, so
// lists of waiterRefs may be cleaned up lazily.
type waiterRef struct {
	p   *Proc
	gen uint64
}

func (w waiterRef) valid() bool { return w.p.waiting && w.p.waitGen == w.gen }

// A Signal is a broadcast condition: processes Wait on it and any code may
// Notify to wake all current waiters. Waits may carry a timeout. Because
// waiters are woken (not handed a value), users should re-check their
// predicate in a loop after Wait returns.
type Signal struct {
	k       *Kernel
	waiters []waiterRef
}

// NewSignal returns a signal bound to kernel k.
func (k *Kernel) NewSignal() *Signal { return &Signal{k: k} }

// Wait parks p until the next Notify.
func (s *Signal) Wait(p *Proc) {
	gen := p.prepareWait()
	s.waiters = append(s.waiters, waiterRef{p, gen})
	p.park()
}

// WaitTimeout parks p until the next Notify or until d elapses. It reports
// true if the signal fired and false on timeout.
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	gen := p.prepareWait()
	s.waiters = append(s.waiters, waiterRef{p, gen})
	s.k.scheduleWake(s.k.now.Add(d), p, gen, WakeTimeout)
	return p.park() != WakeTimeout
}

// Notify wakes every process currently waiting on the signal.
func (s *Signal) Notify() {
	ws := s.waiters
	s.waiters = s.waiters[:0]
	for _, w := range ws {
		if w.valid() {
			s.k.scheduleWake(s.k.now, w.p, w.gen, WakeDone)
		}
	}
}

// HasWaiters reports whether any process is currently waiting.
func (s *Signal) HasWaiters() bool {
	for _, w := range s.waiters {
		if w.valid() {
			return true
		}
	}
	return false
}

// A Resource is a counted FIFO semaphore: up to Capacity holders at once,
// further acquirers queue in arrival order. It models exclusive or pooled
// hardware (CPU cores, bus slots, DMA channels).
type Resource struct {
	k        *Kernel
	capacity int
	inUse    int
	queue    []waiterRef

	// accounting
	busySince   Time
	BusyTime    Duration // total time with at least one holder
	GrantCount  int64
	totalQueued Duration
}

// NewResource returns a resource with the given capacity (>= 1).
func (k *Kernel) NewResource(capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{k: k, capacity: capacity}
}

// Capacity returns the maximum simultaneous holders.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of current holders.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting to acquire.
func (r *Resource) QueueLen() int {
	n := 0
	for _, w := range r.queue {
		if w.valid() {
			n++
		}
	}
	return n
}

// Acquire obtains one unit, blocking in FIFO order when none is free.
func (r *Resource) Acquire(p *Proc) {
	start := r.k.now
	if r.inUse < r.capacity {
		r.grant()
		return
	}
	gen := p.prepareWait()
	r.queue = append(r.queue, waiterRef{p, gen})
	p.park()
	// Release woke us and transferred its unit: it already called grant.
	r.totalQueued += r.k.now.Sub(start)
}

// TryAcquire obtains a unit without blocking; it reports success.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.capacity {
		r.grant()
		return true
	}
	return false
}

func (r *Resource) grant() {
	if r.inUse == 0 {
		r.busySince = r.k.now
	}
	r.inUse++
	r.GrantCount++
}

// Release returns one unit, handing it to the oldest waiter if any.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource")
	}
	for len(r.queue) > 0 {
		w := r.queue[0]
		r.queue = r.queue[1:]
		if w.valid() {
			// Transfer the unit directly: inUse stays constant but a new
			// grant is recorded for the waiter.
			r.GrantCount++
			r.k.scheduleWake(r.k.now, w.p, w.gen, WakeDone)
			return
		}
	}
	r.inUse--
	if r.inUse == 0 {
		r.BusyTime += r.k.now.Sub(r.busySince)
	}
}

// Use runs fn while holding one unit of the resource.
func (r *Resource) Use(p *Proc, fn func()) {
	r.Acquire(p)
	defer r.Release()
	fn()
}

// UseFor holds one unit for duration d: the canonical "execute on this
// hardware for d" operation.
func (r *Resource) UseFor(p *Proc, d Duration) {
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
}

// Utilization returns the fraction of time in [0, now] during which the
// resource had at least one holder.
func (r *Resource) Utilization() float64 {
	busy := r.BusyTime
	if r.inUse > 0 {
		busy += r.k.now.Sub(r.busySince)
	}
	if r.k.now == 0 {
		return 0
	}
	return float64(busy) / float64(r.k.now)
}

// A Queue is a FIFO of values with blocking Get and optionally bounded
// capacity (capacity 0 means unbounded; Put then never blocks).
type Queue[T any] struct {
	k        *Kernel
	items    []T
	capacity int
	notEmpty *Signal
	notFull  *Signal
	closed   bool
}

// NewQueue returns a queue bound to kernel k. capacity 0 means unbounded.
func NewQueue[T any](k *Kernel, capacity int) *Queue[T] {
	return &Queue[T]{k: k, capacity: capacity, notEmpty: k.NewSignal(), notFull: k.NewSignal()}
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }

// Closed reports whether Close has been called.
func (q *Queue[T]) Closed() bool { return q.closed }

// Put appends v, blocking while a bounded queue is full. Put on a closed
// queue panics (it indicates a protocol bug in the simulation).
func (q *Queue[T]) Put(p *Proc, v T) {
	for q.capacity > 0 && len(q.items) >= q.capacity && !q.closed {
		q.notFull.Wait(p)
	}
	if q.closed {
		panic("sim: Put on closed queue")
	}
	q.items = append(q.items, v)
	q.notEmpty.Notify()
}

// TryPut appends v if the queue has room; it reports success.
func (q *Queue[T]) TryPut(v T) bool {
	if q.closed || (q.capacity > 0 && len(q.items) >= q.capacity) {
		return false
	}
	q.items = append(q.items, v)
	q.notEmpty.Notify()
	return true
}

// Get removes and returns the oldest item, blocking while the queue is
// empty. The second result is false if the queue was closed and drained.
func (q *Queue[T]) Get(p *Proc) (T, bool) {
	for len(q.items) == 0 && !q.closed {
		q.notEmpty.Wait(p)
	}
	return q.take()
}

// GetTimeout is Get with a deadline; ok=false with timedOut=true means the
// wait expired.
func (q *Queue[T]) GetTimeout(p *Proc, d Duration) (v T, ok bool, timedOut bool) {
	deadline := q.k.now.Add(d)
	for len(q.items) == 0 && !q.closed {
		remain := deadline.Sub(q.k.now)
		if remain <= 0 || !q.notEmpty.WaitTimeout(p, remain) {
			var zero T
			return zero, false, true
		}
	}
	v, ok = q.take()
	return v, ok, false
}

// TryGet removes the oldest item without blocking.
func (q *Queue[T]) TryGet() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	return q.take()
}

func (q *Queue[T]) take() (T, bool) {
	if len(q.items) == 0 {
		var zero T
		return zero, false
	}
	v := q.items[0]
	var zero T
	q.items[0] = zero
	q.items = q.items[1:]
	q.notFull.Notify()
	return v, true
}

// Close marks the queue closed: pending and future Gets drain remaining
// items then return ok=false.
func (q *Queue[T]) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.notEmpty.Notify()
	q.notFull.Notify()
}
