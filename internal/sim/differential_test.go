package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// Differential scheduler harness: the retained reference implementation
// below reproduces the kernel's previous event queue — a container/heap
// min-heap ordered by (at, seq) with lazily-invalidated ("ghost") timer
// entries — and every randomized operation stream is applied to it and to
// the production eventQueue side by side. The observable pop order (the
// (at, seq, id) stream of live events, including equal-timestamp seq
// tie-breaks and skipped stale timer generations) must be identical: this
// is the bit-identical-replay property the wheel + eager-removal rewrite
// claims, checked against the semantics it replaced.

// refEvent is one entry of the reference heap.
type refEvent struct {
	at  Time
	seq uint64
	id  int64 // payload identity for cross-checking
	tmr *refTimer
	gen uint64 // timer generation at push time
}

type refTimer struct {
	gen     uint64 // current generation; mismatched heap entries are ghosts
	pending bool
}

type refHeap []*refEvent

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(*refEvent)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// refQueue is the old scheduler: ghosts stay queued until dispatch.
type refQueue struct {
	h refHeap
}

func (r *refQueue) push(at Time, seq uint64, id int64, tmr *refTimer, gen uint64) {
	heap.Push(&r.h, &refEvent{at: at, seq: seq, id: id, tmr: tmr, gen: gen})
}

// popLive dispatches until a live event emerges, skipping ghosts exactly
// as the old kernel's dispatch loop did. ok is false when only ghosts (or
// nothing) remained.
func (r *refQueue) popLive() (Time, uint64, int64, bool) {
	for len(r.h) > 0 {
		e := heap.Pop(&r.h).(*refEvent)
		if e.tmr != nil {
			if e.tmr.gen != e.gen {
				continue // ghost: cancelled or re-armed since push
			}
			e.tmr.pending = false
		}
		return e.at, e.seq, e.id, true
	}
	return 0, 0, 0, false
}

// difTimer pairs a reference timer with its production-queue arena index.
type difTimer struct {
	ref refTimer
	idx int32 // nilIdx when idle
}

func TestDifferentialScheduler(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var ref refQueue
		var q eventQueue
		q.init()

		var (
			now    Time
			seq    uint64
			nextID int64
			live   []int32 // production arena indices of plain events
		)
		timers := make([]*difTimer, 8)
		for i := range timers {
			timers[i] = &difTimer{idx: nilIdx}
		}
		// Horizon mix: same-instant, inside each wheel level, straddling
		// the cascade boundaries, and far enough to overflow to the heap.
		horizons := []Duration{
			0, 0, 1, 100,
			Duration(1) << wheelShifts[0] / 1000, // sub-slot at level 0
			Duration(1) << wheelShifts[0] * 200,  // deep in level 0
			Duration(1) << wheelShifts[0] * 256,  // exactly the L0 horizon
			Duration(1) << wheelShifts[1] * 3,    // level 1
			Duration(1) << wheelShifts[1] * 256,  // exactly the L1 horizon
			Duration(1) << wheelShifts[2] * 7,    // level 2
			Duration(1) << wheelShifts[2] * 300,  // beyond the wheel: heap
		}
		var lastAt Time

		pushBoth := func(at Time, tm *difTimer) {
			id := nextID
			nextID++
			idx := q.alloc()
			e := &q.arena[idx]
			e.at, e.seq = at, seq
			e.gen = uint64(id) // reuse gen as the payload identity channel
			if tm != nil {
				ref.push(at, seq, id, &tm.ref, tm.ref.gen)
				tm.idx = idx
			} else {
				ref.push(at, seq, id, nil, 0)
				live = append(live, idx)
			}
			seq++
			q.insert(idx, now)
		}

		for op := 0; op < 4000; op++ {
			switch r := rng.Intn(10); {
			case r < 4: // plain push
				at := now.Add(horizons[rng.Intn(len(horizons))])
				if rng.Intn(4) == 0 && lastAt >= now {
					at = lastAt // force (at, seq) tie-breaks
				}
				lastAt = at
				pushBoth(at, nil)
			case r < 6: // timer reset: ghost in ref, eager swap in new
				tm := timers[rng.Intn(len(timers))]
				tm.ref.gen++
				tm.ref.pending = true
				if tm.idx != nilIdx {
					q.remove(tm.idx)
					q.release(tm.idx)
				}
				pushBoth(now.Add(horizons[rng.Intn(len(horizons))]), tm)
			case r < 7: // timer stop: ghost in ref, removal in new
				tm := timers[rng.Intn(len(timers))]
				if tm.ref.pending {
					tm.ref.gen++
					tm.ref.pending = false
				}
				if tm.idx != nilIdx {
					q.remove(tm.idx)
					q.release(tm.idx)
					tm.idx = nilIdx
				}
			default: // pop and compare
				rat, rseq, rid, rok := ref.popLive()
				idx := q.peek(now)
				if !rok {
					if idx != nilIdx {
						t.Fatalf("seed %d op %d: ref empty, queue has (at=%d seq=%d)",
							seed, op, q.arena[idx].at, q.arena[idx].seq)
					}
					continue
				}
				if idx == nilIdx {
					t.Fatalf("seed %d op %d: queue empty, ref has (at=%d seq=%d id=%d)",
						seed, op, rat, rseq, rid)
				}
				e := &q.arena[idx]
				if e.at != rat || e.seq != rseq || int64(e.gen) != rid {
					t.Fatalf("seed %d op %d: pop mismatch: queue (at=%d seq=%d id=%d) vs ref (at=%d seq=%d id=%d)",
						seed, op, e.at, e.seq, int64(e.gen), rat, rseq, rid)
				}
				// Mirror the kernel's dispatch: detach timers, advance now.
				for _, tm := range timers {
					if tm.idx == idx {
						tm.idx = nilIdx
					}
				}
				now = e.at
				q.remove(idx)
				q.release(idx)
			}
		}

		// Drain both completely: the tails must agree event for event.
		for {
			rat, rseq, rid, rok := ref.popLive()
			idx := q.peek(now)
			if !rok {
				if idx != nilIdx {
					t.Fatalf("seed %d drain: ref empty, queue has seq=%d", seed, q.arena[idx].seq)
				}
				break
			}
			if idx == nilIdx {
				t.Fatalf("seed %d drain: queue empty, ref has seq=%d", seed, rseq)
			}
			e := &q.arena[idx]
			if e.at != rat || e.seq != rseq || int64(e.gen) != rid {
				t.Fatalf("seed %d drain: (at=%d seq=%d id=%d) vs ref (at=%d seq=%d id=%d)",
					seed, e.at, e.seq, int64(e.gen), rat, rseq, rid)
			}
			for _, tm := range timers {
				if tm.idx == idx {
					tm.idx = nilIdx
				}
			}
			now = e.at
			q.remove(idx)
			q.release(idx)
		}
		if q.size != 0 {
			t.Fatalf("seed %d: queue reports %d residual events after drain", seed, q.size)
		}
		_ = live
	}
}

// TestDifferentialKernelTimers drives real Kernel timers (Reset/Stop
// races, stale wakes via timed waits) against the same seeds twice and
// checks the two runs observe identical fire sequences — seeded replay at
// the kernel API level rather than the queue level.
func TestDifferentialKernelTimers(t *testing.T) {
	run := func(seed int64) []Time {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		var fired []Time
		timers := make([]*Timer, 6)
		for i := range timers {
			timers[i] = k.NewTimer(func() { fired = append(fired, k.Now()) })
		}
		for i := 0; i < 400; i++ {
			d := Duration(rng.Intn(1 << 22))
			at := Time(rng.Intn(1 << 24))
			tm := timers[rng.Intn(len(timers))]
			switch rng.Intn(4) {
			case 0:
				k.At(at, func() { tm.Reset(d) })
			case 1:
				k.At(at, func() { tm.Stop() })
			case 2:
				k.At(at, func() { fired = append(fired, k.Now()) })
			case 3:
				tm.Reset(d)
			}
		}
		k.RunUntil(Time(1 << 26))
		k.Shutdown()
		return fired
	}
	for seed := int64(0); seed < 10; seed++ {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: replay diverged: %d vs %d firings", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: firing %d at %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}
