package sim

import (
	"fmt"
	"testing"
)

// TestEqualTimestampMixedSources pins the tie-break across every way an
// event can be scheduled: kernel callbacks (At/After), timers, and
// process wakes landing on the same instant run in creation order.
func TestEqualTimestampMixedSources(t *testing.T) {
	k := NewKernel()
	var got []string
	k.After(10*Nanosecond, func() { got = append(got, "after") })
	k.At(Time(10*Nanosecond), func() { got = append(got, "at") })
	tm := k.NewTimer(func() { got = append(got, "timer") })
	tm.Reset(10 * Nanosecond)
	k.Go("proc", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		got = append(got, "proc")
	})
	k.Run()
	want := []string{"after", "at", "timer", "proc"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("equal-timestamp order got %v, want %v", got, want)
	}
}

// TestYieldRunsSameInstantWork checks the wake/sleep contract of Yield:
// everything already scheduled at the current instant runs before the
// yielding process continues.
func TestYieldRunsSameInstantWork(t *testing.T) {
	k := NewKernel()
	var got []string
	k.Go("a", func(p *Proc) {
		got = append(got, "a1")
		p.Yield()
		got = append(got, "a2")
	})
	k.Go("b", func(p *Proc) { got = append(got, "b") })
	k.Run()
	want := []string{"a1", "b", "a2"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("yield order got %v, want %v", got, want)
	}
}

func TestProcAccessors(t *testing.T) {
	k := NewKernel()
	var inner *Proc
	k.Go("worker", func(p *Proc) {
		inner = p
		if p.Name() != "worker" {
			t.Errorf("Name() = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() is not the owning kernel")
		}
		if p.Done() {
			t.Error("Done() inside the process body")
		}
		p.Sleep(Nanosecond)
	})
	k.Run()
	if inner == nil || !inner.Done() {
		t.Fatal("process did not finish")
	}
}

func TestTimerPendingExpires(t *testing.T) {
	k := NewKernel()
	fired := 0
	tm := k.NewTimer(func() { fired++ })
	if tm.Pending() {
		t.Fatal("new timer is pending")
	}
	tm.Reset(10 * Nanosecond)
	if !tm.Pending() || tm.Expires() != Time(10*Nanosecond) {
		t.Fatalf("armed timer: pending=%v expires=%v", tm.Pending(), tm.Expires())
	}
	if k.RunFor(5*Nanosecond) != Time(5*Nanosecond) {
		t.Fatal("RunFor did not advance to its limit")
	}
	if fired != 0 || !tm.Pending() {
		t.Fatalf("timer fired early: fired=%d pending=%v", fired, tm.Pending())
	}
	k.RunFor(5 * Nanosecond)
	if fired != 1 || tm.Pending() {
		t.Fatalf("timer at deadline: fired=%d pending=%v", fired, tm.Pending())
	}
	if !k.Idle() {
		t.Fatal("kernel not idle after the only event fired")
	}
	k.After(Nanosecond, func() { fired++ })
	if k.Idle() {
		t.Fatal("kernel idle with a pending After")
	}
	k.Run()
	if fired != 2 {
		t.Fatalf("fired=%d, want 2", fired)
	}
}

func TestSignalHasWaiters(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal()
	if s.HasWaiters() {
		t.Fatal("fresh signal has waiters")
	}
	k.Go("w", func(p *Proc) { s.Wait(p) })
	k.Run()
	if !s.HasWaiters() {
		t.Fatal("parked waiter not reported")
	}
	s.Notify()
	if s.HasWaiters() {
		t.Fatal("waiters remain after Notify")
	}
	k.Run()
	k.Shutdown()
}

// TestStaleNotifyIgnored pins the wait-generation contract: a Notify
// arriving after the same wait already timed out must not wake the
// process out of its next, unrelated sleep.
func TestStaleNotifyIgnored(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal()
	var got []string
	k.Go("w", func(p *Proc) {
		if s.WaitTimeout(p, 5*Nanosecond) {
			got = append(got, "signaled")
		} else {
			got = append(got, "timeout")
		}
		p.Sleep(20 * Nanosecond)
		got = append(got, fmt.Sprintf("slept@%v", p.Now()))
	})
	// Fires at the same instant as the timeout but with a later seq, so
	// the timeout wins and this Notify targets a stale generation.
	k.At(Time(5*Nanosecond), func() { s.Notify() })
	k.Run()
	want := []string{"timeout", "slept@25ns"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("got %v, want %v (stale notify cut the sleep short?)", got, want)
	}
}

func TestResourceTryAcquireAndAccessors(t *testing.T) {
	k := NewKernel()
	r := k.NewResource(2)
	if r.Capacity() != 2 || r.InUse() != 0 || r.QueueLen() != 0 {
		t.Fatalf("fresh resource: cap=%d inuse=%d qlen=%d", r.Capacity(), r.InUse(), r.QueueLen())
	}
	if !r.TryAcquire() || !r.TryAcquire() {
		t.Fatal("TryAcquire failed with units free")
	}
	if r.TryAcquire() {
		t.Fatal("TryAcquire succeeded at capacity")
	}
	if r.InUse() != 2 {
		t.Fatalf("InUse=%d, want 2", r.InUse())
	}
	ran := false
	k.Go("user", func(p *Proc) {
		r.Use(p, func() {
			if r.InUse() != 2 {
				t.Errorf("InUse inside Use = %d (unit transferred, count constant)", r.InUse())
			}
			ran = true
		})
	})
	k.Run()
	if r.QueueLen() != 1 {
		t.Fatalf("QueueLen=%d, want 1 parked acquirer", r.QueueLen())
	}
	r.Release() // hands the unit to the parked Use
	k.Run()
	if !ran {
		t.Fatal("Use body never ran")
	}
	r.Release()
	if r.InUse() != 0 {
		t.Fatalf("InUse=%d after all releases", r.InUse())
	}
}

func TestQueueTryOpsAndClose(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 2)
	if q.Len() != 0 || q.Closed() {
		t.Fatalf("fresh queue: len=%d closed=%v", q.Len(), q.Closed())
	}
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty queue succeeded")
	}
	if !q.TryPut(1) || !q.TryPut(2) {
		t.Fatal("TryPut failed with room")
	}
	if q.TryPut(3) {
		t.Fatal("TryPut succeeded on a full bounded queue")
	}
	if q.Len() != 2 {
		t.Fatalf("Len=%d, want 2", q.Len())
	}
	if v, ok := q.TryGet(); !ok || v != 1 {
		t.Fatalf("TryGet = %d,%v, want 1,true", v, ok)
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() false after Close")
	}
	if q.TryPut(4) {
		t.Fatal("TryPut succeeded on a closed queue")
	}
	// A closed queue still drains its remaining items.
	if v, ok := q.TryGet(); !ok || v != 2 {
		t.Fatalf("drain after close = %d,%v, want 2,true", v, ok)
	}
	done := false
	k.Go("g", func(p *Proc) {
		if _, ok := q.Get(p); ok {
			t.Error("Get on closed+drained queue returned ok")
		}
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("Get on closed queue blocked")
	}
}

func TestTimeStringAndRates(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{0, "0ps"},
		{500 * Picosecond, "500ps"},
		{2 * Nanosecond, "2ns"},
		{3 * Microsecond, "3us"},
		{4 * Millisecond, "4ms"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("Duration(%d).String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
	if got := Time(2 * Millisecond).String(); got != "2ms" {
		t.Errorf("Time.String() = %q", got)
	}
	if GBps(2) != 2e9 {
		t.Errorf("GBps(2) = %v", GBps(2))
	}
}

// TestEventTraceDeterminism runs a scenario that exercises queues,
// resources, signal timeouts and timers together, records the full
// (time, proc, action) event trace, and requires two executions to be
// identical — the property every benchmark in this repo leans on.
func TestEventTraceDeterminism(t *testing.T) {
	run := func() []string {
		k := NewKernel()
		var trace []string
		logf := func(p *Proc, format string, args ...any) {
			trace = append(trace, fmt.Sprintf("%v %s %s", p.Now(), p.Name(), fmt.Sprintf(format, args...)))
		}
		q := NewQueue[int](k, 4)
		r := k.NewResource(2)
		s := k.NewSignal()
		for i := 0; i < 3; i++ {
			i := i
			k.Go(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 5; j++ {
					p.Sleep(Duration(i+1) * Nanosecond)
					q.Put(p, i*10+j)
					logf(p, "put %d", i*10+j)
				}
			})
			k.Go(fmt.Sprintf("cons%d", i), func(p *Proc) {
				for {
					v, ok := q.Get(p)
					if !ok {
						logf(p, "closed")
						return
					}
					r.UseFor(p, Duration(v%3)*Nanosecond)
					logf(p, "got %d", v)
					if v%4 == 0 {
						s.Notify()
					}
				}
			})
		}
		k.Go("waiter", func(p *Proc) {
			for i := 0; i < 3; i++ {
				if s.WaitTimeout(p, 7*Nanosecond) {
					logf(p, "signal")
				} else {
					logf(p, "timeout")
				}
			}
		})
		k.After(40*Nanosecond, func() { q.Close() })
		k.Run()
		k.Shutdown()
		return trace
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("empty trace")
	}
}
