package sim

import "math/bits"

// The event queue behind the kernel: a slab of pooled event structs
// addressed by int32 index, placed either in a hierarchical timer wheel
// (near-future events — the common case for RTO, watchdog, linger and
// NAPI timers) or in an inlined 4-ary min-heap (far-future events).
//
// Determinism contract: peek/pop always yield the live event with the
// smallest (at, seq), exactly as the old container/heap implementation
// did. The wheel never reorders: level L only accepts an event whose
// slot prefix at>>shift is within 255 of now>>shift, so within a level
// the 256 slots hold 256 *consecutive* prefixes and the first occupied
// slot in circular order from the now-cursor necessarily contains the
// level minimum; events sharing a slot share a prefix and are ordered
// by a (at, seq) scan of that slot's list.

const nilIdx = int32(-1)

const (
	levelFree = int8(-2) // on the free list
	levelHeap = int8(-1) // in the overflow heap
)

// wheelShifts pick the granularity of each level: 2^16 ps ≈ 65.5ns slots
// covering ~16.8us, 2^24 ps ≈ 16.8us slots covering ~4.3ms, and 2^32 ps
// ≈ 4.3ms slots covering ~1.1s. Anything further out overflows to the
// heap (rare: long experiment horizons and end-of-run drains). The L0/L1
// split deliberately separates the fire band (sub-us bus, link and cpu
// events that almost always pop) from the churn band (RTO and watchdog
// timers ~100us+ out that are usually cancelled): cancelling an L1 timer
// rarely touches the cached L1 minimum, so it never forces a rescan.
var wheelShifts = [3]uint{16, 24, 32}

const wheelSlots = 256

type event struct {
	at     Time
	seq    uint64
	fn     func()
	proc   *Proc
	timer  *Timer
	gen    uint64 // wait generation the wake targets (proc events only)
	reason WakeReason

	// Queue placement. level selects the structure; pos is the heap
	// position or wheel slot; next/prev link the slot's intrusive list
	// (next doubles as the free-list link).
	level      int8
	pos        int32
	next, prev int32
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

type wheelLevel struct {
	slot  [wheelSlots]int32
	occ   [wheelSlots / 64]uint64
	min   int32 // cached arena index of the level minimum; nilIdx = recompute
	count int32
	// Value copies of the cached minimum's key, so the per-pop global
	// compare in peek never dereferences the arena for a warm cache.
	minAt  Time
	minSeq uint64
}

type eventQueue struct {
	arena []event
	free  int32 // free-list head, linked through event.next
	heap  []int32
	wheel [3]wheelLevel
	size  int
}

func (q *eventQueue) init() {
	q.arena = q.arena[:0]
	q.free = nilIdx
	q.heap = q.heap[:0]
	q.size = 0
	for l := range q.wheel {
		w := &q.wheel[l]
		for i := range w.slot {
			w.slot[i] = nilIdx
		}
		w.occ = [wheelSlots / 64]uint64{}
		w.min = nilIdx
		w.count = 0
	}
}

// alloc returns a free event slot. The caller must fill at/seq (and any
// payload) before insert. Pointers into the arena are invalidated by the
// next alloc, so they must not be held across one.
func (q *eventQueue) alloc() int32 {
	if q.free != nilIdx {
		idx := q.free
		q.free = q.arena[idx].next
		return idx
	}
	q.arena = append(q.arena, event{})
	return int32(len(q.arena) - 1)
}

// release recycles an event slot, dropping payload references so pooled
// slots never retain closures or processes.
func (q *eventQueue) release(idx int32) {
	q.arena[idx] = event{next: q.free, level: levelFree}
	q.free = idx
}

// insert places an allocated event into the wheel level matching its
// horizon, or the heap beyond the outermost level. It reports whether
// the event landed in the wheel. Requires at >= now.
func (q *eventQueue) insert(idx int32, now Time) bool {
	e := &q.arena[idx]
	q.size++
	for l := 0; l < len(wheelShifts); l++ {
		shift := wheelShifts[l]
		if uint64(e.at)>>shift-uint64(now)>>shift < wheelSlots {
			q.wheelInsert(l, idx, e)
			return true
		}
	}
	q.heapInsert(idx, e)
	return false
}

func (q *eventQueue) wheelInsert(l int, idx int32, e *event) {
	w := &q.wheel[l]
	s := int32(uint64(e.at)>>wheelShifts[l]) & (wheelSlots - 1)
	e.level, e.pos = int8(l), s
	head := w.slot[s]
	e.next, e.prev = head, nilIdx
	if head != nilIdx {
		q.arena[head].prev = idx
	} else {
		w.occ[s>>6] |= 1 << uint(s&63)
	}
	w.slot[s] = idx
	if w.count == 0 || (w.min != nilIdx && (e.at < w.minAt || (e.at == w.minAt && e.seq < w.minSeq))) {
		w.min, w.minAt, w.minSeq = idx, e.at, e.seq
	}
	w.count++
}

// remove unlinks a live event from whichever structure holds it. The
// slot itself stays allocated; the caller releases it.
func (q *eventQueue) remove(idx int32) {
	e := &q.arena[idx]
	q.size--
	if e.level == levelHeap {
		q.heapRemove(e.pos)
		return
	}
	w := &q.wheel[e.level]
	if e.prev != nilIdx {
		q.arena[e.prev].next = e.next
	} else {
		w.slot[e.pos] = e.next
		if e.next == nilIdx {
			w.occ[e.pos>>6] &^= 1 << uint(e.pos&63)
		}
	}
	if e.next != nilIdx {
		q.arena[e.next].prev = e.prev
	}
	w.count--
	if w.min == idx {
		w.min = nilIdx
	}
}

// cascade re-files outer-level events whose slot the now-cursor has
// reached down to the next finer level. Events sharing the cursor's
// prefix at level L are within 2^shift[L] of now and their bits above
// shift[L] equal now's, so they always fit level L-1. Each event moves
// at most twice over its lifetime, keeping the hot min-scans confined
// to the ~1us level-0 slots.
func (q *eventQueue) cascade(now Time) {
	for l := len(q.wheel) - 1; l >= 1; l-- {
		w := &q.wheel[l]
		if w.count == 0 {
			continue
		}
		s := int32(uint64(now)>>wheelShifts[l]) & (wheelSlots - 1)
		if w.occ[s>>6]&(1<<uint(s&63)) == 0 {
			continue
		}
		head := w.slot[s]
		w.slot[s] = nilIdx
		w.occ[s>>6] &^= 1 << uint(s&63)
		for idx := head; idx != nilIdx; {
			e := &q.arena[idx]
			next := e.next
			if w.min == idx {
				w.min = nilIdx
			}
			w.count--
			q.wheelInsert(l-1, idx, e)
			idx = next
		}
	}
}

// peek returns the arena index of the live event with the smallest
// (at, seq), or nilIdx when the queue is empty.
func (q *eventQueue) peek(now Time) int32 {
	q.cascade(now)
	best := nilIdx
	var bAt Time
	var bSeq uint64
	if len(q.heap) > 0 {
		best = q.heap[0]
		e := &q.arena[best]
		bAt, bSeq = e.at, e.seq
	}
	for l := range q.wheel {
		w := &q.wheel[l]
		if w.count == 0 {
			continue
		}
		if w.min == nilIdx {
			q.wheelRescan(l, now)
		}
		if best == nilIdx || w.minAt < bAt || (w.minAt == bAt && w.minSeq < bSeq) {
			best, bAt, bSeq = w.min, w.minAt, w.minSeq
		}
	}
	return best
}

// wheelRescan recomputes a level's min cache: the first occupied slot in
// circular order from the now-cursor necessarily holds the level minimum
// (see the invariant at the top of the file), so only that slot's list
// is scanned.
func (q *eventQueue) wheelRescan(l int, now Time) {
	w := &q.wheel[l]
	s := q.firstOccupied(w, int32(uint64(now)>>wheelShifts[l])&(wheelSlots-1))
	best := w.slot[s]
	be := &q.arena[best]
	for i := be.next; i != nilIdx; i = q.arena[i].next {
		if e := &q.arena[i]; eventLess(e, be) {
			best, be = i, e
		}
	}
	w.min, w.minAt, w.minSeq = best, be.at, be.seq
}

// firstOccupied scans the occupancy bitmap for the first occupied slot
// in circular order starting at cursor c. The caller guarantees the
// level is non-empty.
func (q *eventQueue) firstOccupied(w *wheelLevel, c int32) int32 {
	wi := c >> 6
	if b := w.occ[wi] & (^uint64(0) << uint(c&63)); b != 0 {
		return wi<<6 | int32(bits.TrailingZeros64(b))
	}
	for j := int32(1); j <= 4; j++ {
		word := (wi + j) & 3
		b := w.occ[word]
		if j == 4 {
			b &= 1<<uint(c&63) - 1
		}
		if b != 0 {
			return word<<6 | int32(bits.TrailingZeros64(b))
		}
	}
	panic("sim: firstOccupied on empty wheel level")
}

func (q *eventQueue) heapInsert(idx int32, e *event) {
	e.level = levelHeap
	e.pos = int32(len(q.heap))
	q.heap = append(q.heap, idx)
	q.heapUp(e.pos)
}

func (q *eventQueue) heapRemove(i int32) {
	h := q.heap
	n := int32(len(h)) - 1
	last := h[n]
	h[n] = 0
	q.heap = h[:n]
	if i == n {
		return
	}
	h[i] = last
	q.arena[last].pos = i
	if !q.heapDown(i) {
		q.heapUp(i)
	}
}

func (q *eventQueue) heapUp(i int32) {
	h := q.heap
	idx := h[i]
	e := &q.arena[idx]
	for i > 0 {
		parent := (i - 1) >> 2
		if !eventLess(e, &q.arena[h[parent]]) {
			break
		}
		h[i] = h[parent]
		q.arena[h[i]].pos = i
		i = parent
	}
	h[i] = idx
	e.pos = i
}

// heapDown sifts the element at position i toward the leaves and
// reports whether it moved.
func (q *eventQueue) heapDown(i int32) bool {
	h := q.heap
	n := int32(len(h))
	idx := h[i]
	e := &q.arena[idx]
	start := i
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		best := c
		be := &q.arena[h[c]]
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if je := &q.arena[h[j]]; eventLess(je, be) {
				best, be = j, je
			}
		}
		if !eventLess(be, e) {
			break
		}
		h[i] = h[best]
		q.arena[h[i]].pos = i
		i = best
	}
	h[i] = idx
	e.pos = i
	return i != start
}
