// Package sim provides a deterministic discrete-event simulation kernel.
//
// Simulated entities are written as ordinary sequential Go code running in
// processes (Proc). The kernel guarantees that exactly one process (or event
// callback) executes at a time and that events fire in (time, sequence)
// order, so a simulation is fully deterministic and race-free by
// construction.
//
// Simulated time is measured in integer picoseconds, fine enough to express
// single cycles of multi-GHz clocks without rounding (one cycle at 2.45GHz
// is 408ps) while still covering about 106 days in an int64.
package sim

import "fmt"

// Time is an absolute simulated timestamp in picoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulated time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// MaxTime is the largest representable simulated timestamp.
const MaxTime = Time(1<<63 - 1)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

func (d Duration) String() string {
	neg := ""
	if d < 0 {
		neg = "-"
		d = -d
	}
	switch {
	case d >= Second:
		return fmt.Sprintf("%s%.6gs", neg, d.Seconds())
	case d >= Millisecond:
		return fmt.Sprintf("%s%.6gms", neg, float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%s%.6gus", neg, d.Microseconds())
	case d >= Nanosecond:
		return fmt.Sprintf("%s%.6gns", neg, d.Nanoseconds())
	default:
		return fmt.Sprintf("%s%dps", neg, int64(d))
	}
}

func (t Time) String() string { return Duration(t).String() }

// Cycles returns the duration of n clock cycles at the given frequency.
// It rounds to the nearest picosecond.
func Cycles(n int64, hz float64) Duration {
	if hz <= 0 {
		panic("sim: Cycles with non-positive frequency")
	}
	ps := float64(n) * 1e12 / hz
	return Duration(ps + 0.5)
}

// AtRate returns the time needed to move the given number of bytes at a
// sustained rate of bytesPerSec.
func AtRate(bytes int64, bytesPerSec float64) Duration {
	if bytesPerSec <= 0 {
		panic("sim: AtRate with non-positive rate")
	}
	ps := float64(bytes) * 1e12 / bytesPerSec
	return Duration(ps + 0.5)
}

// Hz converts a frequency in GHz to Hz; a small readability helper for
// configuration tables.
func GHz(f float64) float64 { return f * 1e9 }

// Gbps converts a link rate in gigabits per second to bytes per second.
func Gbps(r float64) float64 { return r * 1e9 / 8 }

// GBps converts a memory rate in gigabytes per second to bytes per second.
func GBps(r float64) float64 { return r * 1e9 }
