package sim

import "testing"

// FuzzTimerWheel decodes the input into an operation stream over the
// production eventQueue and the reference heap from differential_test.go,
// then checks the two agree on every pop and on the final drain. Each
// 6-byte chunk is one op: [kind, d0, d1, d2, d3, shift]. The horizon
// uint32(d)<<(shift%12) spans same-slot pushes, every wheel level, the
// cascade boundaries, and the far-future heap spill.
func FuzzTimerWheel(f *testing.F) {
	f.Add([]byte{})
	// One push per horizon band: L0, L1, L2, heap; then a pop.
	f.Add([]byte{
		0, 1, 0, 0, 0, 0, // at = now+1 (level 0)
		0, 0, 0, 4, 0, 2, // level 1
		0, 0, 0, 0, 8, 4, // level 2
		0, 0, 0, 0, 255, 11, // heap
		5, 0, 0, 0, 0, 0, // pop
	})
	// Equal-timestamp seq tie-break: two zero-delta pushes then pops.
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0, 5, 0, 0, 0, 0, 0})
	// Timer churn: reset, reset (re-arm), stop, pop.
	f.Add([]byte{3, 16, 0, 0, 0, 1, 3, 32, 0, 0, 0, 1, 4, 0, 0, 0, 0, 1, 5, 0, 0, 0, 0, 0})
	// Stop of a never-armed timer, pop on an empty queue.
	f.Add([]byte{4, 0, 0, 0, 0, 2, 5, 0, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var ref refQueue
		var q eventQueue
		q.init()
		var (
			now Time
			seq uint64
			id  int64
		)
		timers := make([]*difTimer, 4)
		for i := range timers {
			timers[i] = &difTimer{idx: nilIdx}
		}
		pushBoth := func(at Time, tm *difTimer) {
			idx := q.alloc()
			e := &q.arena[idx]
			e.at, e.seq, e.gen = at, seq, uint64(id)
			if tm != nil {
				ref.push(at, seq, id, &tm.ref, tm.ref.gen)
				tm.idx = idx
			} else {
				ref.push(at, seq, id, nil, 0)
			}
			id++
			seq++
			q.insert(idx, now)
		}
		for i := 0; i+6 <= len(data); i += 6 {
			d := uint64(data[i+1]) | uint64(data[i+2])<<8 |
				uint64(data[i+3])<<16 | uint64(data[i+4])<<24
			horizon := Duration(d << (data[i+5] % 12))
			tm := timers[int(data[i+5])%len(timers)]
			switch data[i] % 6 {
			case 0, 1, 2:
				pushBoth(now.Add(horizon), nil)
			case 3: // timer reset
				tm.ref.gen++
				tm.ref.pending = true
				if tm.idx != nilIdx {
					q.remove(tm.idx)
					q.release(tm.idx)
				}
				pushBoth(now.Add(horizon), tm)
			case 4: // timer stop
				if tm.ref.pending {
					tm.ref.gen++
					tm.ref.pending = false
				}
				if tm.idx != nilIdx {
					q.remove(tm.idx)
					q.release(tm.idx)
					tm.idx = nilIdx
				}
			case 5: // pop and compare
				rat, rseq, rid, rok := ref.popLive()
				idx := q.peek(now)
				if !rok {
					if idx != nilIdx {
						t.Fatalf("op %d: ref empty, queue has (at=%d seq=%d)",
							i/6, q.arena[idx].at, q.arena[idx].seq)
					}
					continue
				}
				if idx == nilIdx {
					t.Fatalf("op %d: queue empty, ref has (at=%d seq=%d)", i/6, rat, rseq)
				}
				e := &q.arena[idx]
				if e.at != rat || e.seq != rseq || int64(e.gen) != rid {
					t.Fatalf("op %d: queue (at=%d seq=%d id=%d) vs ref (at=%d seq=%d id=%d)",
						i/6, e.at, e.seq, int64(e.gen), rat, rseq, rid)
				}
				for _, tmr := range timers {
					if tmr.idx == idx {
						tmr.idx = nilIdx
					}
				}
				now = e.at
				q.remove(idx)
				q.release(idx)
			}
		}
		// Drain: tails must agree, then the queue must be structurally empty.
		for {
			rat, rseq, rid, rok := ref.popLive()
			idx := q.peek(now)
			if !rok {
				if idx != nilIdx {
					t.Fatalf("drain: ref empty, queue has seq=%d", q.arena[idx].seq)
				}
				break
			}
			if idx == nilIdx {
				t.Fatalf("drain: queue empty, ref has seq=%d", rseq)
			}
			e := &q.arena[idx]
			if e.at != rat || e.seq != rseq || int64(e.gen) != rid {
				t.Fatalf("drain: queue (at=%d seq=%d id=%d) vs ref (at=%d seq=%d id=%d)",
					e.at, e.seq, int64(e.gen), rat, rseq, rid)
			}
			for _, tmr := range timers {
				if tmr.idx == idx {
					tmr.idx = nilIdx
				}
			}
			now = e.at
			q.remove(idx)
			q.release(idx)
		}
		if q.size != 0 {
			t.Fatalf("queue reports %d residual events after drain", q.size)
		}
		for l := range q.wheel {
			if q.wheel[l].count != 0 {
				t.Fatalf("wheel level %d reports %d residual events", l, q.wheel[l].count)
			}
		}
		if len(q.heap) != 0 {
			t.Fatalf("heap holds %d residual events", len(q.heap))
		}
	})
}
