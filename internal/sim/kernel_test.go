package sim

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	tm := Time(0).Add(3 * Microsecond)
	if tm != Time(3_000_000) {
		t.Fatalf("3us = %d ps, want 3000000", int64(tm))
	}
	if d := tm.Sub(Time(1_000_000)); d != 2*Microsecond {
		t.Fatalf("Sub = %v, want 2us", d)
	}
	if s := (1500 * Millisecond).Seconds(); s != 1.5 {
		t.Fatalf("Seconds = %v", s)
	}
}

func TestCycles(t *testing.T) {
	// One cycle at 1GHz is exactly 1ns.
	if d := Cycles(1, GHz(1)); d != Nanosecond {
		t.Fatalf("1 cycle @1GHz = %v, want 1ns", d)
	}
	// 2.45GHz cycle is ~408ps.
	d := Cycles(1, GHz(2.45))
	if d < 407*Picosecond || d > 409*Picosecond {
		t.Fatalf("1 cycle @2.45GHz = %v, want ~408ps", d)
	}
	// Cycles scales linearly (within rounding).
	if d1, d100 := Cycles(1, GHz(3.4)), Cycles(100, GHz(3.4)); d100 < 99*d1 || d100 > 101*d1 {
		t.Fatalf("Cycles not linear: %v vs %v", d1, d100)
	}
}

func TestAtRate(t *testing.T) {
	// 1250 bytes at 10Gbps (1.25GB/s) takes 1us.
	if d := AtRate(1250, Gbps(10)); d != Microsecond {
		t.Fatalf("1250B @10Gbps = %v, want 1us", d)
	}
}

func TestDurationString(t *testing.T) {
	cases := map[Duration]string{
		500 * Picosecond: "500ps",
		2 * Nanosecond:   "2ns",
		15 * Microsecond: "15us",
		3 * Millisecond:  "3ms",
		2 * Second:       "2s",
		-5 * Microsecond: "-5us",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d ps String = %q, want %q", int64(d), got, want)
		}
	}
}

func TestEventOrdering(t *testing.T) {
	k := NewKernel()
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.At(10, func() { got = append(got, 11) }) // same time: FIFO by seq
	end := k.Run()
	want := []int{1, 11, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order got %v, want %v", got, want)
		}
	}
	if end != 30 {
		t.Fatalf("end time %v, want 30ps", end)
	}
}

func TestEventOrderingProperty(t *testing.T) {
	// Property: for any set of scheduled times, callbacks run in
	// non-decreasing time order, with ties broken by insertion order.
	f := func(times []uint16) bool {
		k := NewKernel()
		type fire struct {
			at  Time
			seq int
		}
		var fired []fire
		for i, tt := range times {
			at := Time(tt)
			i := i
			k.At(at, func() { fired = append(fired, fire{k.Now(), i}) })
		}
		k.Run()
		if len(fired) != len(times) {
			return false
		}
		if !sort.SliceIsSorted(fired, func(i, j int) bool {
			if fired[i].at != fired[j].at {
				return fired[i].at < fired[j].at
			}
			return fired[i].seq < fired[j].seq
		}) {
			return false
		}
		for i, f := range fired {
			_ = i
			if f.at != Time(times[f.seq]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestProcSleep(t *testing.T) {
	k := NewKernel()
	var wake Time
	k.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Microsecond)
		wake = p.Now()
	})
	k.Run()
	if wake != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5us", wake)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", k.LiveProcs())
	}
}

func TestProcInterleaving(t *testing.T) {
	k := NewKernel()
	var trace []string
	mk := func(name string, d Duration, n int) {
		k.Go(name, func(p *Proc) {
			for i := 0; i < n; i++ {
				p.Sleep(d)
				trace = append(trace, name)
			}
		})
	}
	mk("a", 3, 3) // wakes at 3,6,9
	mk("b", 4, 2) // wakes at 4,8
	k.Run()
	want := []string{"a", "b", "a", "b", "a"}
	if len(trace) != len(want) {
		t.Fatalf("trace %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
}

func TestRunUntilPausesAndResumes(t *testing.T) {
	k := NewKernel()
	var n int
	k.Go("ticker", func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Sleep(Microsecond)
			n++
		}
	})
	k.RunUntil(Time(3500 * Nanosecond))
	if n != 3 {
		t.Fatalf("after 3.5us n=%d, want 3", n)
	}
	if k.Now() != Time(3500*Nanosecond) {
		t.Fatalf("now=%v", k.Now())
	}
	k.Run()
	if n != 10 {
		t.Fatalf("final n=%d", n)
	}
}

func TestSignalNotify(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal()
	var woke []Time
	for i := 0; i < 3; i++ {
		k.Go("w", func(p *Proc) {
			s.Wait(p)
			woke = append(woke, p.Now())
		})
	}
	k.At(Time(7*Nanosecond), func() { s.Notify() })
	k.Run()
	if len(woke) != 3 {
		t.Fatalf("woke %d waiters, want 3", len(woke))
	}
	for _, w := range woke {
		if w != Time(7*Nanosecond) {
			t.Fatalf("woke at %v, want 7ns", w)
		}
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal()
	var fired, timedOut bool
	k.Go("t1", func(p *Proc) {
		fired = s.WaitTimeout(p, 10*Nanosecond)
	})
	k.Go("t2", func(p *Proc) {
		timedOut = !s.WaitTimeout(p, 2*Nanosecond)
	})
	k.At(Time(5*Nanosecond), func() { s.Notify() })
	k.Run()
	if !fired {
		t.Error("t1 should have been signalled at 5ns (before its 10ns timeout)")
	}
	if !timedOut {
		t.Error("t2 should have timed out at 2ns (before the 5ns notify)")
	}
	// The stale notify to t2 must not corrupt later waits.
	done := false
	k.Go("t3", func(p *Proc) {
		p.Sleep(Nanosecond)
		done = true
	})
	k.Run()
	if !done {
		t.Error("post-timeout process did not run")
	}
}

func TestResourceFIFO(t *testing.T) {
	k := NewKernel()
	r := k.NewResource(1)
	var order []string
	hold := func(name string, start, dur Duration) {
		k.Go(name, func(p *Proc) {
			p.Sleep(start)
			r.Acquire(p)
			order = append(order, name)
			p.Sleep(dur)
			r.Release()
		})
	}
	hold("first", 0, 10)
	hold("second", 1, 10)
	hold("third", 2, 10)
	k.Run()
	want := []string{"first", "second", "third"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
	if k.Now() != 30 {
		t.Fatalf("serialized holds should end at 30ps, got %v", k.Now())
	}
}

func TestResourceCapacity(t *testing.T) {
	k := NewKernel()
	r := k.NewResource(2)
	end := map[string]Time{}
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Go(name, func(p *Proc) {
			r.UseFor(p, 10*Nanosecond)
			end[name] = p.Now()
		})
	}
	k.Run()
	if end["a"] != Time(10*Nanosecond) || end["b"] != Time(10*Nanosecond) {
		t.Fatalf("a,b should run in parallel: %v", end)
	}
	if end["c"] != Time(20*Nanosecond) {
		t.Fatalf("c should queue: %v", end["c"])
	}
}

func TestResourceUtilization(t *testing.T) {
	k := NewKernel()
	r := k.NewResource(1)
	k.Go("u", func(p *Proc) {
		r.UseFor(p, 25*Nanosecond)
		p.Sleep(75 * Nanosecond)
	})
	k.Run()
	if u := r.Utilization(); u < 0.24 || u > 0.26 {
		t.Fatalf("utilization %v, want 0.25", u)
	}
}

func TestQueueFIFOAndBlocking(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var got []int
	k.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Go("producer", func(p *Proc) {
		for i := 1; i <= 5; i++ {
			p.Sleep(Nanosecond)
			q.Put(p, i)
		}
		q.Close()
	})
	k.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("got %v", got)
		}
	}
}

func TestQueueBounded(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 2)
	var putDone Time
	k.Go("producer", func(p *Proc) {
		q.Put(p, 1)
		q.Put(p, 2)
		q.Put(p, 3) // blocks until consumer takes one
		putDone = p.Now()
	})
	k.Go("consumer", func(p *Proc) {
		p.Sleep(10 * Nanosecond)
		q.TryGet()
	})
	k.Run()
	if putDone != Time(10*Nanosecond) {
		t.Fatalf("third Put finished at %v, want 10ns", putDone)
	}
}

func TestQueueGetTimeout(t *testing.T) {
	k := NewKernel()
	q := NewQueue[int](k, 0)
	var timedOut bool
	var v int
	k.Go("c", func(p *Proc) {
		_, _, timedOut = q.GetTimeout(p, 5*Nanosecond)
		v2, ok, to2 := q.GetTimeout(p, 100*Nanosecond)
		if !ok || to2 {
			panic("second GetTimeout should receive")
		}
		v = v2
	})
	k.Go("prod", func(p *Proc) {
		p.Sleep(20 * Nanosecond)
		q.Put(p, 42)
	})
	k.Run()
	if !timedOut {
		t.Error("first GetTimeout should time out")
	}
	if v != 42 {
		t.Errorf("v=%d, want 42", v)
	}
}

func TestTimerStopReset(t *testing.T) {
	k := NewKernel()
	var fires []Time
	tm := k.NewTimer(func() { fires = append(fires, k.Now()) })
	tm.Reset(10 * Nanosecond)
	tm.Reset(20 * Nanosecond) // supersedes the 10ns arm
	k.At(Time(30*Nanosecond), func() {
		tm.Reset(10 * Nanosecond)
	})
	k.At(Time(35*Nanosecond), func() {
		if !tm.Stop() {
			panic("stop should report pending")
		}
	})
	k.Run()
	if len(fires) != 1 || fires[0] != Time(20*Nanosecond) {
		t.Fatalf("fires=%v, want [20ns]", fires)
	}
}

func TestShutdownReleasesParkedProcs(t *testing.T) {
	k := NewKernel()
	s := k.NewSignal()
	for i := 0; i < 4; i++ {
		k.Go("stuck", func(p *Proc) { s.Wait(p) })
	}
	k.Run()
	if k.LiveProcs() != 4 {
		t.Fatalf("live=%d, want 4 parked", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live=%d after shutdown", k.LiveProcs())
	}
}

func TestDeterminism(t *testing.T) {
	// Two identical randomized simulations must produce identical traces.
	run := func(seed int64) []Time {
		k := NewKernel()
		rng := rand.New(rand.NewSource(seed))
		res := k.NewResource(2)
		var trace []Time
		for i := 0; i < 20; i++ {
			d := Duration(rng.Intn(100)) * Nanosecond
			k.Go("p", func(p *Proc) {
				p.Sleep(d)
				res.Acquire(p)
				p.Sleep(Duration(rng.Intn(10)) * Nanosecond)
				trace = append(trace, p.Now())
				res.Release()
			})
		}
		k.Run()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel()
	k.Go("boom", func(p *Proc) {
		p.Sleep(Nanosecond)
		panic("boom")
	})
	defer func() {
		r := recover()
		s, ok := r.(string)
		if !ok || !strings.Contains(s, "boom") {
			t.Fatalf("recovered %v, want a message containing boom", r)
		}
		if !strings.Contains(s, "kernel_test.go") {
			t.Fatalf("panic should carry the origin stack, got: %v", r)
		}
	}()
	k.Run()
	t.Fatal("Run should have panicked")
}
