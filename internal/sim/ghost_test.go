package sim

import "testing"

// Regression for the ghost-event leak: Timer.Stop and Timer.Reset used to
// leave the superseded event in the heap (skipped lazily at dispatch), so
// a timer re-armed N times held N queue entries. Eager unlinking must keep
// the pending count at one entry per armed timer no matter how much churn
// the timer has seen.
func TestTimerChurnLeavesNoGhosts(t *testing.T) {
	k := NewKernel()
	defer k.Shutdown()

	tm := k.NewTimer(func() {})
	for i := 0; i < 10000; i++ {
		tm.Reset(Duration(1000 + i))
		if i%3 == 0 {
			tm.Stop()
		}
	}
	// Re-arm once more: exactly one event may be pending, not one per cycle.
	tm.Reset(2500)
	if got := k.PendingEvents(); got != 1 {
		t.Fatalf("pending events after 10000 reset/stop cycles = %d, want 1", got)
	}
	tm.Stop()
	if got := k.PendingEvents(); got != 0 {
		t.Fatalf("pending events after final stop = %d, want 0", got)
	}

	// Many timers: each contributes at most one entry regardless of churn.
	timers := make([]*Timer, 64)
	for i := range timers {
		timers[i] = k.NewTimer(func() {})
	}
	for round := 0; round < 100; round++ {
		for i, tmr := range timers {
			tmr.Reset(Duration(500 + round*len(timers) + i))
		}
	}
	if got := k.PendingEvents(); got != len(timers) {
		t.Fatalf("pending events with %d churned timers = %d, want %d",
			len(timers), got, len(timers))
	}
	for _, tmr := range timers {
		tmr.Stop()
	}
	if got := k.PendingEvents(); got != 0 {
		t.Fatalf("pending events after stopping all timers = %d, want 0", got)
	}
}
