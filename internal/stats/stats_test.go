package stats

import (
	"testing"
	"testing/quick"

	"github.com/mcn-arch/mcn/internal/sim"
)

func TestCounterRate(t *testing.T) {
	var c Counter
	c.Add(0, 500)
	c.Add(sim.Time(sim.Second), 500)
	if r := c.Rate(); r != 1000 {
		t.Fatalf("rate=%v, want 1000/s", r)
	}
	if c.Total != 1000 || c.N != 2 {
		t.Fatalf("total=%d n=%d", c.Total, c.N)
	}
	if c.First() != 0 || c.Last() != sim.Time(sim.Second) {
		t.Fatalf("bounds %v %v", c.First(), c.Last())
	}
}

func TestCounterSingleEventHasNoRate(t *testing.T) {
	var c Counter
	c.Add(5, 100)
	if c.Rate() != 0 {
		t.Fatal("a single sample has no measurable rate")
	}
	if c.RateOver(sim.Second) != 100 {
		t.Fatal("RateOver should use the provided span")
	}
}

func TestHistogramOrderStatistics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.N() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("n=%d min=%v max=%v", h.N(), h.Min(), h.Max())
	}
	if m := h.Median(); m != 50 {
		t.Fatalf("median=%v", m)
	}
	if q := h.Quantile(0.99); q != 99 {
		t.Fatalf("p99=%v", q)
	}
	if mean := h.Mean(); mean != 50.5 {
		t.Fatalf("mean=%v", mean)
	}
}

func TestHistogramQuantileProperty(t *testing.T) {
	// Property: quantiles are monotone and bounded by min/max.
	f := func(vals []float64) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Observe(v)
		}
		last := h.Min()
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := h.Quantile(q)
			if v < last {
				return false
			}
			last = v
		}
		return h.Quantile(1) == h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBusyMeterEnergy(t *testing.T) {
	var b BusyMeter
	b.AddBusy(sim.Second)
	// 4 units over 2s: 1s busy at 10W + 7 unit-seconds idle at 1W.
	e := b.Energy(2*sim.Second, 4, 10, 1)
	if e != 17 {
		t.Fatalf("energy=%v, want 17J", e)
	}
	// Busy beyond span*units clamps idle at zero.
	var b2 BusyMeter
	b2.AddBusy(3 * sim.Second)
	if e := b2.Energy(sim.Second, 1, 5, 1); e != 15 {
		t.Fatalf("over-busy energy=%v, want 15", e)
	}
}

func TestHistogramReservoir(t *testing.T) {
	h := Histogram{Cap: 100, Seed: 42}
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i))
	}
	// N, Mean, Min and Max stay exact over every observation; only the
	// stored sample set is bounded.
	if h.N() != 10000 {
		t.Fatalf("N = %d", h.N())
	}
	if h.Retained() != 100 {
		t.Fatalf("retained %d samples", h.Retained())
	}
	if h.Min() != 1 || h.Max() != 10000 {
		t.Fatalf("min/max %g/%g", h.Min(), h.Max())
	}
	if mean := h.Mean(); mean != 5000.5 {
		t.Fatalf("mean %g", mean)
	}
	// The reservoir is a uniform sample, so the median estimate must land
	// in the middle of the distribution (binomial bounds: +-40% is >5
	// sigma for n=100).
	if med := h.Median(); med < 3000 || med > 7000 {
		t.Fatalf("reservoir median %g", med)
	}
	// Seeded: same stream, same reservoir.
	h2 := Histogram{Cap: 100, Seed: 42}
	for i := 1; i <= 10000; i++ {
		h2.Observe(float64(i))
	}
	if h.Quantile(0.9) != h2.Quantile(0.9) {
		t.Fatal("reservoir not deterministic")
	}
	// Cap = 0 keeps the historical store-everything behavior.
	var u Histogram
	for i := 1; i <= 50; i++ {
		u.Observe(float64(i))
	}
	if u.Retained() != 50 || u.N() != 50 || u.Quantile(1) != 50 {
		t.Fatalf("unbounded mode: retained=%d n=%d", u.Retained(), u.N())
	}
}

func TestOpsCounters(t *testing.T) {
	var o OpsCounters
	o.Filter.Add(OpTally{Issued: 2, Offloaded: 1, Host: 1, WireReqs: 3, ReqBytes: 100, RespBytes: 900})
	o.RMW.Add(OpTally{Issued: 5, Offloaded: 5, WireReqs: 5, ReqBytes: 50, RespBytes: 40})
	var sum OpsCounters
	sum.Add(o)
	sum.Add(o)
	if sum.Total() != 14 || sum.Bytes() != 2180 {
		t.Fatalf("total=%d bytes=%d", sum.Total(), sum.Bytes())
	}
	if o.Filter.Bytes() != 1000 {
		t.Fatalf("filter bytes = %d", o.Filter.Bytes())
	}
	want := "multiget(n=0 dimm=0 host=0 err=0 wire=0 reqB=0 respB=0) scan(n=0 dimm=0 host=0 err=0 wire=0 reqB=0 respB=0) filter(n=2 dimm=1 host=1 err=0 wire=3 reqB=100 respB=900) rmw(n=5 dimm=5 host=0 err=0 wire=5 reqB=50 respB=40)"
	if o.String() != want {
		t.Fatalf("String() = %q", o.String())
	}
}
