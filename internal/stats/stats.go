// Package stats provides lightweight measurement primitives for the
// simulator: counters with time bounds (for throughput), histograms (for
// latency distributions), and busy-time accumulators (for utilization and
// energy accounting).
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/mcn-arch/mcn/internal/sim"
)

// Counter accumulates a quantity (bytes, packets, ...) and remembers the
// first and last accumulation times so a rate can be derived.
type Counter struct {
	Total int64
	N     int64
	first sim.Time
	last  sim.Time
	seen  bool
}

// Add accumulates v at time t.
func (c *Counter) Add(t sim.Time, v int64) {
	if !c.seen {
		c.first = t
		c.seen = true
	}
	c.last = t
	c.Total += v
	c.N++
}

// First returns the time of the first Add.
func (c *Counter) First() sim.Time { return c.first }

// Last returns the time of the most recent Add.
func (c *Counter) Last() sim.Time { return c.last }

// Rate returns Total divided by the observation span in seconds (units per
// second). It returns 0 if fewer than two events were recorded.
func (c *Counter) Rate() float64 {
	span := c.last.Sub(c.first).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(c.Total) / span
}

// RateOver returns Total divided by an externally supplied span.
func (c *Counter) RateOver(span sim.Duration) float64 {
	s := span.Seconds()
	if s <= 0 {
		return 0
	}
	return float64(c.Total) / s
}

// Histogram collects samples and reports order statistics. By default it
// stores every raw sample (fine for the few hundred thousand observations
// a short simulation makes). Setting Cap before the first Observe bounds
// memory for long runs: the stored set becomes a uniform random reservoir
// of Cap samples (Vitter's Algorithm R on a seeded splitmix64 stream, so
// replays stay byte-identical), while N, Mean, Min and Max remain exact
// over every observation; only the quantiles are estimated from the
// reservoir. Hot paths that need exact tails use HDR instead.
type Histogram struct {
	// Cap, when > 0, bounds the stored samples to a reservoir of that
	// size. Seed selects the replacement stream (0 is a valid seed).
	Cap  int
	Seed uint64

	samples  []float64
	sorted   bool
	sum      float64
	n        int64
	min, max float64
	rng      uint64
	rngInit  bool
}

// rand is one splitmix64 step, the repo-wide seeded stream primitive.
func (h *Histogram) rand() uint64 {
	if !h.rngInit {
		h.rng = h.Seed
		h.rngInit = true
	}
	h.rng += 0x9e3779b97f4a7c15
	z := h.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if h.n == 1 || v > h.max {
		h.max = v
	}
	if h.Cap > 0 && len(h.samples) >= h.Cap {
		// Algorithm R: the new sample displaces a random resident with
		// probability Cap/n, keeping the reservoir a uniform sample of
		// everything seen. (Sorting permutes slots, but slots are
		// exchangeable, so a uniform index stays a uniform victim.)
		if j := h.rand() % uint64(h.n); j < uint64(h.Cap) {
			h.samples[j] = v
			h.sorted = false
		}
		return
	}
	h.samples = append(h.samples, v)
	h.sorted = false
}

// ObserveDuration records a duration sample in nanoseconds.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(d.Nanoseconds()) }

// N returns the number of observations (not the retained sample count).
func (h *Histogram) N() int { return int(h.n) }

// Mean returns the exact mean over all observations (0 with none).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observation, exact even in reservoir mode (0
// with no samples).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation, exact even in reservoir mode (0
// with no samples).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank.
func (h *Histogram) Quantile(q float64) float64 {
	if len(h.samples) == 0 {
		return 0
	}
	h.ensureSorted()
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Median returns the 0.5 quantile.
func (h *Histogram) Median() float64 { return h.Quantile(0.5) }

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// Retained returns the stored sample count (== N unless Cap bounded it).
func (h *Histogram) Retained() int { return len(h.samples) }

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p99=%.3g max=%.3g",
		h.N(), h.Mean(), h.Median(), h.Quantile(0.99), h.Max())
}

// HDR is a log-bucketed high-dynamic-range histogram in the HdrHistogram
// style: non-negative integer values (latencies in nanoseconds, sizes in
// bytes) are binned into 2^hdrSubBits sub-buckets per power of two, which
// bounds the relative quantile error at 1/2^hdrSubBits (~1.6%) across the
// whole int64 range with a fixed ~30KB of counters. Unlike Histogram it
// never stores raw samples, so millions of observations cost nothing, and
// two HDRs merge exactly (bucket-wise sum) — the property serving
// benchmarks need to combine per-shard tails into a fleet-wide tail. The
// zero value is an empty histogram ready for use.
type HDR struct {
	counts   []int64
	n        int64
	sum      float64
	min, max int64
}

// hdrSubBits sets the sub-bucket resolution: 2^6 = 64 sub-buckets per
// octave.
const hdrSubBits = 6

// hdrBuckets is the counter array size: values up to 2^63-1 land in bucket
// (63-hdrSubBits-1+1)<<hdrSubBits + 63 at most.
const hdrBuckets = (64 - hdrSubBits) << hdrSubBits

// hdrIndex maps a value to its bucket.
func hdrIndex(v int64) int {
	if v < 1<<hdrSubBits {
		return int(v)
	}
	e := bits.Len64(uint64(v)) - hdrSubBits - 1
	return e<<hdrSubBits + int(v>>uint(e))
}

// hdrMid returns the representative (midpoint) value of a bucket.
func hdrMid(idx int) int64 {
	if idx < 1<<hdrSubBits {
		return int64(idx)
	}
	e := uint(idx>>hdrSubBits - 1)
	low := int64(1<<hdrSubBits+idx&(1<<hdrSubBits-1)) << e
	return low + int64(1)<<e/2
}

// Record adds one observation (negative values are clamped to 0).
func (h *HDR) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]int64, hdrBuckets)
	}
	h.counts[hdrIndex(v)]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += float64(v)
}

// RecordDuration records a duration as integer nanoseconds.
func (h *HDR) RecordDuration(d sim.Duration) { h.Record(int64(d / sim.Nanosecond)) }

// N returns the number of observations.
func (h *HDR) N() int64 { return h.n }

// Min returns the smallest recorded value, exactly (0 when empty).
func (h *HDR) Min() int64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, exactly (0 when empty).
func (h *HDR) Max() int64 {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Mean returns the arithmetic mean (0 when empty).
func (h *HDR) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Quantile returns the q-quantile (0 <= q <= 1) by nearest rank over the
// buckets; the result is a bucket midpoint clamped to [Min, Max], so its
// relative error is bounded by the bucket resolution.
func (h *HDR) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.n)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.n {
		rank = h.n
	}
	var seen int64
	for idx, c := range h.counts {
		seen += c
		if seen >= rank {
			v := hdrMid(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return float64(v)
		}
	}
	return float64(h.max)
}

// Merge adds every observation of o into h. Merging is exact: bucket
// counts sum, so merge order never changes any quantile.
func (h *HDR) Merge(o *HDR) {
	if o == nil || o.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]int64, hdrBuckets)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
	h.sum += o.sum
}

// String summarizes the histogram.
func (h *HDR) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p99=%.3g max=%d",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// FaultCounters records the fault events one injection site has inflicted
// on its layer. Sites live in internal/faults; the counter block lives here
// so every layer reports faults in one shape and determinism tests can
// compare snapshots across runs.
type FaultCounters struct {
	Site        string
	Drops       int64 // frames/messages randomly lost
	BurstDrops  int64 // additional losses inside a loss burst
	FlapDrops   int64 // losses inside a carrier-flap window
	Corruptions int64 // bit-flips injected (caught by FCS/CRC at RX)
	Suppressed  int64 // interrupt/alert edges swallowed
}

// Total sums every kind of injected fault.
func (f *FaultCounters) Total() int64 {
	return f.Drops + f.BurstDrops + f.FlapDrops + f.Corruptions + f.Suppressed
}

// String renders the counters compactly.
func (f *FaultCounters) String() string {
	return fmt.Sprintf("%s: drop=%d burst=%d flap=%d corrupt=%d suppressed=%d",
		f.Site, f.Drops, f.BurstDrops, f.FlapDrops, f.Corruptions, f.Suppressed)
}

// RecoveryCounters records a layer's fault-detection and recovery events:
// what the hardened receive paths rejected and what the watchdogs repaired.
// Components embed one and bump the fields that apply to them.
type RecoveryCounters struct {
	FCSDrops      int64 // frames rejected by the RX FCS/CRC verify
	WatchdogKicks int64 // stalled rings re-kicked by a watchdog timer
	CarrierDrops  int64 // frames dropped toward a dead/offline device
	CarrierDowns  int64 // device-death detections (netdev carrier-down)
	CarrierUps    int64 // device recoveries (carrier restored)
}

// String renders the counters compactly.
func (r *RecoveryCounters) String() string {
	return fmt.Sprintf("fcsDrop=%d kicks=%d carrierDrop=%d down=%d up=%d",
		r.FCSDrops, r.WatchdogKicks, r.CarrierDrops, r.CarrierDowns, r.CarrierUps)
}

// AdmitCounters tallies one run's admission-control decisions: what the
// per-shard breakers shed or re-routed and how often they cycled. The
// breaker state machine lives in internal/admit; the counter block lives
// here so the serving telemetry and the determinism tests compare
// admission activity in one shape, the way FaultCounters does for
// injection sites.
type AdmitCounters struct {
	Shed      int64 // requests fast-failed because every candidate shard was open
	Rerouted  int64 // requests moved off an open shard to the next vnode owner
	Opens     int64 // closed/half-open -> open transitions
	HalfOpens int64 // open -> half-open transitions (probe windows started)
	Closes    int64 // half-open -> closed transitions (shard readmitted)
	Probes    int64 // requests admitted as half-open probes
}

// Total sums every breaker transition (shed/rerouted are per-request and
// excluded).
func (a *AdmitCounters) Total() int64 { return a.Opens + a.HalfOpens + a.Closes }

// String renders the counters compactly.
func (a *AdmitCounters) String() string {
	return fmt.Sprintf("shed=%d rerouted=%d opens=%d halfopens=%d closes=%d probes=%d",
		a.Shed, a.Rerouted, a.Opens, a.HalfOpens, a.Closes, a.Probes)
}

// HealthEvent is one per-shard breaker transition: the health timeline of
// a serving run is the ordered list of these. States are rendered as
// strings ("closed", "open", "half-open") so the timeline can be compared
// byte-for-byte across replayed runs without importing the state machine.
type HealthEvent struct {
	Shard  int
	Name   string
	T      sim.Time
	From   string
	To     string
	Reason string
}

// String renders one transition.
func (e HealthEvent) String() string {
	return fmt.Sprintf("[%v] shard %d %s %s->%s (%s)", e.T, e.Shard, e.Name, e.From, e.To, e.Reason)
}

// ReplCounters tallies one run's replication activity: the primary→backup
// forward stream, sync-write outcomes, and the anti-entropy catch-up
// traffic. The replication machinery lives in internal/replica; the
// counter block lives here so serving telemetry and determinism tests
// compare replication activity in one shape, the way AdmitCounters does
// for the breakers.
type ReplCounters struct {
	Forwards int64 // records queued for primary->backup forwarding
	Acks     int64 // forwards acknowledged by the backup store
	Dropped  int64 // forwards dropped from a full window (healed by anti-entropy)
	DownSkip int64 // forwards skipped because the backup host was not admitted
	// MaxPending is the high-water mark of any pair's forward queue —
	// the measured bound on async staleness (in records).
	MaxPending int64
	SyncAcks     int64 // sync writes acknowledged by the backup before the deadline
	SyncDegraded int64 // sync writes locally acked because the backup was not admitted
	SyncFailed   int64 // sync writes that timed out with the backup admitted
	Reconnects   int64 // forward-connection redials
	CatchupPulls int64 // anti-entropy delta requests issued
	CatchupRecs  int64 // delta records applied during catch-up
	StaleReads   int64 // failover reads of keys with a forward still pending
	FailoverReads int64 // reads served by a backup store
}

// String renders the counters compactly.
func (r *ReplCounters) String() string {
	return fmt.Sprintf("fwd=%d ack=%d drop=%d downskip=%d maxpend=%d sync(ack=%d degraded=%d failed=%d) reconn=%d pulls=%d recs=%d failover=%d stale=%d",
		r.Forwards, r.Acks, r.Dropped, r.DownSkip, r.MaxPending,
		r.SyncAcks, r.SyncDegraded, r.SyncFailed, r.Reconnects,
		r.CatchupPulls, r.CatchupRecs, r.FailoverReads, r.StaleReads)
}

// ReplEvent is one replication-plane transition — a catch-up starting,
// a shard readmitted after convergence, a forward stream flushed. The
// ordered list is the replication timeline a replay must reproduce
// byte-for-byte, mirroring HealthEvent for the breakers.
type ReplEvent struct {
	Pair   int // keyspace (primary shard) index
	Name   string
	T      sim.Time
	What   string
	Detail string
}

// String renders one transition.
func (e ReplEvent) String() string {
	if e.Detail == "" {
		return fmt.Sprintf("[%v] pair %d %s %s", e.T, e.Pair, e.Name, e.What)
	}
	return fmt.Sprintf("[%v] pair %d %s %s (%s)", e.T, e.Pair, e.Name, e.What, e.Detail)
}

// BusyMeter accumulates intervals during which a component was active.
// Overlapping Busy calls are additive (two cores busy for 1s = 2s busy
// time), which is what energy integration wants.
type BusyMeter struct {
	Busy sim.Duration
}

// AddBusy records d of active time.
func (b *BusyMeter) AddBusy(d sim.Duration) { b.Busy += d }

// Energy returns busy*activePower + (span*units - busy)*idlePower, in
// joules, where powers are in watts and span covers the full run.
func (b *BusyMeter) Energy(span sim.Duration, units int, activeW, idleW float64) float64 {
	busy := b.Busy.Seconds()
	total := span.Seconds() * float64(units)
	idle := total - busy
	if idle < 0 {
		idle = 0
	}
	return busy*activeW + idle*idleW
}

// OpTally is the per-operator-family slice of a serving run's
// near-memory operator activity: how many logical operators ran, which
// execution path the decision layer picked for each, and the wire
// traffic they cost. The operator machinery lives in internal/nmop; the
// counter block lives here so serving telemetry and determinism tests
// compare operator activity in one shape, the way ReplCounters does for
// replication.
type OpTally struct {
	Issued    int64 // logical operators issued
	Offloaded int64 // executed on-DIMM
	Host      int64 // executed through the host-side fallback
	Errors    int64 // operators that failed (bad request, transport)
	WireReqs  int64 // wire requests the operators expanded into
	ReqBytes  int64 // request payload bytes over the channel
	RespBytes int64 // response payload bytes over the channel
}

// Add folds another tally into this one.
func (o *OpTally) Add(b OpTally) {
	o.Issued += b.Issued
	o.Offloaded += b.Offloaded
	o.Host += b.Host
	o.Errors += b.Errors
	o.WireReqs += b.WireReqs
	o.ReqBytes += b.ReqBytes
	o.RespBytes += b.RespBytes
}

// Bytes is the operator family's total channel payload volume.
func (o *OpTally) Bytes() int64 { return o.ReqBytes + o.RespBytes }

// String renders the tally compactly.
func (o *OpTally) String() string {
	return fmt.Sprintf("n=%d dimm=%d host=%d err=%d wire=%d reqB=%d respB=%d",
		o.Issued, o.Offloaded, o.Host, o.Errors, o.WireReqs, o.ReqBytes, o.RespBytes)
}

// OpsCounters tallies one serving run's near-memory operator traffic by
// family: multi-GET, range scan, filter+aggregate, and read-modify-write
// (CAS + fetch-and-add folded together — one offload decision covers
// both).
type OpsCounters struct {
	MultiGet OpTally
	Scan     OpTally
	Filter   OpTally
	RMW      OpTally
}

// Add folds another counter block into this one.
func (o *OpsCounters) Add(b OpsCounters) {
	o.MultiGet.Add(b.MultiGet)
	o.Scan.Add(b.Scan)
	o.Filter.Add(b.Filter)
	o.RMW.Add(b.RMW)
}

// Total sums logical operators across families.
func (o *OpsCounters) Total() int64 {
	return o.MultiGet.Issued + o.Scan.Issued + o.Filter.Issued + o.RMW.Issued
}

// Bytes sums channel payload volume across families.
func (o *OpsCounters) Bytes() int64 {
	return o.MultiGet.Bytes() + o.Scan.Bytes() + o.Filter.Bytes() + o.RMW.Bytes()
}

// String renders one line per family, determinism-comparison friendly.
func (o *OpsCounters) String() string {
	return fmt.Sprintf("multiget(%s) scan(%s) filter(%s) rmw(%s)",
		o.MultiGet.String(), o.Scan.String(), o.Filter.String(), o.RMW.String())
}
