package stats

import (
	"math"
	"testing"

	"github.com/mcn-arch/mcn/internal/sim"
)

// splitmix64 for reproducible test streams (no math/rand global state).
type testRng struct{ state uint64 }

func (r *testRng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *testRng) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

func relErr(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / want
}

func TestHDRQuantileUniform(t *testing.T) {
	var h HDR
	const n = 200000
	r := testRng{state: 1}
	for i := 0; i < n; i++ {
		h.Record(int64(r.next() % 1000000))
	}
	if h.N() != n {
		t.Fatalf("n=%d", h.N())
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 500000}, {0.90, 900000}, {0.99, 990000}, {0.999, 999000},
	} {
		got := h.Quantile(tc.q)
		// Bucket resolution is 1/64 (~1.6%); allow sampling noise on top.
		if relErr(got, tc.want) > 0.03 {
			t.Errorf("p%g = %.0f, want ~%.0f", tc.q*100, got, tc.want)
		}
	}
	if relErr(h.Mean(), 500000) > 0.02 {
		t.Errorf("mean = %.0f, want ~500000", h.Mean())
	}
}

func TestHDRQuantileExponential(t *testing.T) {
	var h HDR
	const n = 200000
	const mean = 50000.0
	r := testRng{state: 7}
	for i := 0; i < n; i++ {
		u := r.float64()
		h.Record(int64(-mean * math.Log(1-u)))
	}
	// Exponential quantiles: -mean * ln(1-q).
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := -mean * math.Log(1-q)
		if got := h.Quantile(q); relErr(got, want) > 0.05 {
			t.Errorf("p%g = %.0f, want ~%.0f", q*100, got, want)
		}
	}
}

func TestHDRExactSmallValues(t *testing.T) {
	// Values below 2^hdrSubBits have unit-resolution buckets: quantiles are
	// exact.
	var h HDR
	for v := int64(1); v <= 10; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %g, want 5", got)
	}
	if got := h.Quantile(1.0); got != 10 {
		t.Errorf("p100 = %g, want 10", got)
	}
	if h.Min() != 1 || h.Max() != 10 {
		t.Errorf("min/max = %d/%d", h.Min(), h.Max())
	}
}

func TestHDRMergeAssociative(t *testing.T) {
	mk := func(seed uint64, n int, span int64) *HDR {
		h := &HDR{}
		r := testRng{state: seed}
		for i := 0; i < n; i++ {
			h.Record(int64(r.next() % uint64(span)))
		}
		return h
	}
	a, b, c := mk(1, 5000, 1000), mk(2, 7000, 1000000), mk(3, 3000, 100)

	// (a+b)+c vs a+(b+c), built from fresh copies.
	left := &HDR{}
	left.Merge(a)
	left.Merge(b)
	left.Merge(c)
	bc := &HDR{}
	bc.Merge(b)
	bc.Merge(c)
	right := &HDR{}
	right.Merge(a)
	right.Merge(bc)

	if left.N() != right.N() || left.Min() != right.Min() || left.Max() != right.Max() {
		t.Fatalf("merge mismatch: n %d/%d min %d/%d max %d/%d",
			left.N(), right.N(), left.Min(), right.Min(), left.Max(), right.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 0.999, 1} {
		if l, r := left.Quantile(q), right.Quantile(q); l != r {
			t.Errorf("q=%g: %.0f vs %.0f", q, l, r)
		}
	}
	if left.Mean() != right.Mean() {
		t.Errorf("mean %g vs %g", left.Mean(), right.Mean())
	}
}

func TestHDRMergePreservesCounts(t *testing.T) {
	a, b := &HDR{}, &HDR{}
	a.Record(10)
	a.Record(20)
	b.Record(1 << 40)
	a.Merge(b)
	if a.N() != 3 || a.Max() != 1<<40 || a.Min() != 10 {
		t.Fatalf("n=%d min=%d max=%d", a.N(), a.Min(), a.Max())
	}
	// p100 must return the exact tracked max even though the top bucket is
	// ~1.6% wide.
	if got := a.Quantile(1.0); got != float64(int64(1)<<40) {
		t.Errorf("p100 = %g", got)
	}
}

func TestHDREmpty(t *testing.T) {
	var h HDR
	if h.N() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty quantile(%g) = %g", q, got)
		}
	}
	// Merging an empty histogram (or nil) is a no-op.
	h.Merge(nil)
	h.Merge(&HDR{})
	if h.N() != 0 {
		t.Fatal("merge of empties should stay empty")
	}
	var dst HDR
	one := &HDR{}
	one.Record(5)
	dst.Merge(one)
	if dst.N() != 1 || dst.Quantile(0.5) != 5 {
		t.Fatalf("merge into empty: n=%d p50=%g", dst.N(), dst.Quantile(0.5))
	}
}

func TestHDRSingleSample(t *testing.T) {
	var h HDR
	h.Record(777)
	if h.N() != 1 || h.Min() != 777 || h.Max() != 777 || h.Mean() != 777 {
		t.Fatalf("single sample: n=%d min=%d max=%d mean=%g", h.N(), h.Min(), h.Max(), h.Mean())
	}
	// Every quantile of a one-sample histogram is that sample, exactly:
	// the bucket midpoint clamps to [min, max] and min == max. Out-of-range
	// q must clamp, not panic or extrapolate.
	for _, q := range []float64{-1, 0, 0.001, 0.5, 0.99, 1, 2} {
		if got := h.Quantile(q); got != 777 {
			t.Errorf("single-sample quantile(%g) = %g, want 777", q, got)
		}
	}
}

func TestHDRMergeDisjointRanges(t *testing.T) {
	// Two histograms whose bucket ranges do not overlap at all: one in the
	// exact low region (values < 64), one six orders of magnitude up. The
	// merge must keep both populations, bridge the empty buckets between
	// them, and agree regardless of merge order.
	low, high := &HDR{}, &HDR{}
	const perSide = 1000
	for i := 0; i < perSide; i++ {
		low.Record(int64(i % 50))
		high.Record(1_000_000_000 + int64(i)*1000)
	}
	mergedA := &HDR{}
	mergedA.Merge(low)
	mergedA.Merge(high)
	mergedB := &HDR{}
	mergedB.Merge(high)
	mergedB.Merge(low)

	for _, m := range []*HDR{mergedA, mergedB} {
		if m.N() != 2*perSide {
			t.Fatalf("merged n = %d, want %d", m.N(), 2*perSide)
		}
		if m.Min() != 0 || m.Max() != high.Max() {
			t.Fatalf("merged min=%d max=%d, want 0 and %d", m.Min(), m.Max(), high.Max())
		}
		// The median splits exactly between the populations; quantiles
		// below it must come from the low range, above it from the high
		// range — nothing may land in the empty gap between the ranges.
		if p25 := m.Quantile(0.25); p25 >= 64 {
			t.Errorf("p25 = %g, want a low-range value < 64", p25)
		}
		if p75 := m.Quantile(0.75); p75 < 1_000_000_000 {
			t.Errorf("p75 = %g, want a high-range value >= 1e9", p75)
		}
		if mean, want := m.Mean(), (low.Mean()+high.Mean())/2; relErr(mean, want) > 1e-9 {
			t.Errorf("merged mean %g, want %g", mean, want)
		}
	}
	if mergedA.Quantile(0.5) != mergedB.Quantile(0.5) || mergedA.Quantile(0.99) != mergedB.Quantile(0.99) {
		t.Fatal("merge order changed a quantile; bucket merge must be exact")
	}
	// The sources are untouched.
	if low.N() != perSide || high.N() != perSide {
		t.Fatalf("merge mutated a source: low n=%d high n=%d", low.N(), high.N())
	}
}

func TestHDRRecordDuration(t *testing.T) {
	var h HDR
	h.RecordDuration(1500 * sim.Nanosecond)
	h.RecordDuration(2 * sim.Microsecond)
	if h.N() != 2 || h.Min() != 1500 || h.Max() != 2000 {
		t.Fatalf("n=%d min=%d max=%d", h.N(), h.Min(), h.Max())
	}
	// Negative and zero clamp to 0.
	h.Record(-5)
	if h.Min() != 0 {
		t.Fatalf("negative record should clamp to 0, min=%d", h.Min())
	}
}
