package node

import (
	"testing"

	"github.com/mcn-arch/mcn/internal/core"
	"github.com/mcn-arch/mcn/internal/sim"
)

func TestTableIIConfigs(t *testing.T) {
	h := HostConfig("h")
	if h.Cores != 8 || h.FreqHz != sim.GHz(3.4) || h.Channels != 2 {
		t.Fatalf("host config %+v", h)
	}
	m := McnConfig("m")
	if m.Cores != 4 || m.FreqHz != sim.GHz(2.45) || m.Channels != 1 {
		t.Fatalf("mcn config %+v", m)
	}
	c := ContuttoConfig("c")
	if c.Cores != 1 || c.FreqHz != 266e6 {
		t.Fatalf("contutto config %+v", c)
	}
}

func TestNodeCopyChargesMemory(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, HostConfig("h"))
	k.Go("copy", func(p *sim.Proc) {
		n.Stack.Copy(p, 1<<20)
	})
	k.Run()
	// A 1MB copy moves 2MB (read + write) through DRAM.
	if got := n.TotalDRAMBytes(); got < 2<<20 {
		t.Fatalf("copy moved only %d DRAM bytes", got)
	}
	// And the core was held for the duration.
	if n.CPU.Busy.Busy <= 0 {
		t.Fatal("copy did not occupy a core")
	}
	k.Shutdown()
}

func TestMemStreamUsesAllChannels(t *testing.T) {
	k := sim.NewKernel()
	n := New(k, HostConfig("h"))
	k.Go("s", func(p *sim.Proc) { n.MemStream(p, 4<<20, false) })
	k.Run()
	for i, ch := range n.Channels {
		if ch.Bytes.Total == 0 {
			t.Fatalf("channel %d saw no traffic", i)
		}
	}
	k.Shutdown()
}

func TestAttachMCNDistributesChannels(t *testing.T) {
	k := sim.NewKernel()
	h := NewHost(k, HostConfig("h"))
	mcns := h.AttachMCN(4, core.MCN0.Options(), McnConfig(""))
	if len(mcns) != 4 {
		t.Fatalf("attached %d", len(mcns))
	}
	if mcns[0].Dimm.ChannelIdx == mcns[1].Dimm.ChannelIdx {
		t.Fatal("first two DIMMs should land on different channels")
	}
	if mcns[0].Dimm.ChannelIdx != mcns[2].Dimm.ChannelIdx {
		t.Fatal("DIMMs 0 and 2 should share channel 0")
	}
	// No static neighbor entries: resolution happens via real ARP.
	for _, m := range mcns {
		if n := len(m.Stack.Ifaces()[0].Neighbors); n != 0 {
			t.Fatalf("%s should start with an empty neighbor table, has %d entries", m.Name, n)
		}
	}
	k.Shutdown()
}

func TestAttachMCNTwicePanics(t *testing.T) {
	k := sim.NewKernel()
	h := NewHost(k, HostConfig("h"))
	h.AttachMCN(1, core.MCN0.Options(), McnConfig(""))
	defer func() {
		if recover() == nil {
			t.Fatal("second AttachMCN should panic")
		}
		k.Shutdown()
	}()
	h.AttachMCN(1, core.MCN0.Options(), McnConfig(""))
}
