// Package node assembles simulated machines from the substrate packages:
// a host server (multi-core CPU, several DDR4 channels, network stack,
// optionally a 10GbE NIC and an MCN host driver) and MCN nodes (the
// mobile-class processor on each MCN DIMM with its private local memory
// channel). Parameters default to Table II of the paper.
package node

import (
	"fmt"

	"github.com/mcn-arch/mcn/internal/core"
	"github.com/mcn-arch/mcn/internal/cpu"
	"github.com/mcn-arch/mcn/internal/dram"
	"github.com/mcn-arch/mcn/internal/ethdev"
	"github.com/mcn-arch/mcn/internal/netstack"
	"github.com/mcn-arch/mcn/internal/sim"
)

// Config describes one machine's compute and memory resources.
type Config struct {
	Name     string
	Cores    int
	FreqHz   float64
	Channels int
	DRAM     dram.Config
	OS       cpu.OSCosts
	Proto    netstack.ProtoCosts
}

// HostConfig returns the Table II host: 8 cores at 3.4GHz, DDR4-3200.
func HostConfig(name string) Config {
	return Config{
		Name:     name,
		Cores:    8,
		FreqHz:   sim.GHz(3.4),
		Channels: 2,
		DRAM:     dram.DDR4_3200(),
		OS:       cpu.DefaultOSCosts(),
		Proto:    netstack.DefaultProtoCosts(),
	}
}

// McnConfig returns the Table II MCN processor: 4 cores at 2.45GHz with one
// private memory channel.
func McnConfig(name string) Config {
	return Config{
		Name:     name,
		Cores:    4,
		FreqHz:   sim.GHz(2.45),
		Channels: 1,
		DRAM:     dram.DDR4_3200(),
		OS:       cpu.DefaultOSCosts(),
		Proto:    netstack.DefaultProtoCosts(),
	}
}

// ContuttoConfig returns the proof-of-concept prototype's MCN processor: a
// single NIOS II soft core at 266MHz with DDR3-1066 DIMMs (Sec. V).
func ContuttoConfig(name string) Config {
	return Config{
		Name:     name,
		Cores:    1,
		FreqHz:   266e6,
		Channels: 1,
		DRAM:     dram.DDR3_1066(),
		OS:       cpu.DefaultOSCosts(),
		Proto:    netstack.DefaultProtoCosts(),
	}
}

// Node is one simulated machine.
type Node struct {
	K        *sim.Kernel
	Name     string
	CPU      *cpu.CPU
	Stack    *netstack.Stack
	Channels []*dram.Channel
	copyIdx  int
}

// New builds a node from a config.
func New(k *sim.Kernel, cfg Config) *Node {
	n := &Node{K: k, Name: cfg.Name}
	n.CPU = cpu.New(k, cfg.Name, cfg.Cores, cfg.FreqHz, cfg.OS)
	n.Stack = netstack.NewStack(k, n.CPU, cfg.Name, cfg.Proto)
	for i := 0; i < cfg.Channels; i++ {
		n.Channels = append(n.Channels, dram.NewChannel(k, cfg.DRAM))
	}
	// Bulk copies run through the memory system: a read and a write
	// stream on a rotating channel, with the core held.
	n.Stack.Copy = func(p *sim.Proc, bytes int) {
		n.CPU.ExecWhile(p, func() { n.MemMove(p, bytes) })
	}
	return n
}

// MemMove charges a memory-to-memory copy of the given size (read+write)
// on the node's channels.
func (n *Node) MemMove(p *sim.Proc, bytes int) {
	ch := n.Channels[n.copyIdx%len(n.Channels)]
	n.copyIdx++
	ch.Read(p, 0x2000_0000, bytes)
	ch.Write(p, 0x3000_0000, bytes)
}

// MemStream charges a pure streaming access (the roofline memory term of a
// compute phase) spread across the node's channels.
func (n *Node) MemStream(p *sim.Proc, bytes int64, write bool) {
	nch := len(n.Channels)
	per := bytes / int64(nch)
	if per <= 0 {
		per = bytes
		nch = 1
	}
	// The stream touches all channels; charging them sequentially within
	// one rank models one rank's serial access pattern while still
	// creating contention with other ranks.
	for i := 0; i < nch; i++ {
		n.Channels[(n.copyIdx+i)%len(n.Channels)].Access(p, 0x6000_0000+uint64(i)<<28, write, int(per))
	}
	n.copyIdx++
}

// TotalDRAMBytes sums traffic over all channels (Fig. 9's numerator).
func (n *Node) TotalDRAMBytes() int64 {
	var t int64
	for _, c := range n.Channels {
		t += c.Bytes.Total
	}
	return t
}

// Host is a server: a Node plus (optionally) an MCN host driver and a
// conventional NIC.
type Host struct {
	*Node
	Driver *core.HostDriver
	NIC    *ethdev.NIC
	Mcns   []*McnNode
	mcnIP  netstack.IP
	// McnSubnet selects the 192.168.<subnet>.x range of this host's MCN
	// point-to-point network; hosts in a rack use distinct subnets. Set
	// before AttachMCN (default 1).
	McnSubnet byte
	// MACBase is forwarded to the driver (see core.HostDriver.MACBase).
	MACBase uint32
}

// McnNode is one MCN DIMM's compute side.
type McnNode struct {
	*Node
	Dimm *core.Dimm
	Drv  *core.DimmDriver
	IP   netstack.IP
	Port *core.HostPort
}

// NewHost builds a host server.
func NewHost(k *sim.Kernel, cfg Config) *Host {
	return &Host{Node: New(k, cfg), McnSubnet: 1}
}

// HostMcnIP returns the host's address on the MCN point-to-point subnet.
func (h *Host) HostMcnIP() netstack.IP { return h.mcnIP }

// AttachMCN installs n MCN DIMMs, spread evenly over the host's memory
// channels, running at the given optimization level, and boots an MCN node
// on each. It may be called once.
func (h *Host) AttachMCN(n int, opts core.Options, mcnCfg Config) []*McnNode {
	if h.Driver != nil {
		panic("node: AttachMCN called twice")
	}
	h.mcnIP = netstack.IPv4(192, 168, h.McnSubnet, 1)
	costs := core.DefaultDriverCosts()
	h.Stack.ChecksumBypass = opts.ChecksumBypass
	h.Driver = core.NewHostDriver(h.K, h.CPU, h.Stack, opts, costs)
	h.Driver.MACBase = h.MACBase
	for i := 0; i < n; i++ {
		chIdx := i % len(h.Channels)
		cfg := mcnCfg
		cfg.Name = fmt.Sprintf("%s/mcn%d", h.Name, i)
		d := core.NewDimm(h.K, cfg.Name, h.Channels[chIdx], chIdx)
		ip := netstack.IPv4(192, 168, h.McnSubnet, byte(i+2))
		port := h.Driver.AddDimm(d, h.mcnIP, ip, i)
		mn := &McnNode{Node: New(h.K, cfg), Dimm: d, IP: ip, Port: port}
		mn.Stack.ChecksumBypass = opts.ChecksumBypass
		mn.Drv = core.NewDimmDriver(h.K, mn.CPU, mn.Stack, mn.Channels[0], d, port, opts, costs)
		// No static neighbor entries: the MCN node discovers the host
		// and its sibling nodes with real ARP exchanges relayed by the
		// forwarding engine (broadcast rule F2).
		mn.Stack.AddIface(mn.Drv, ip, netstack.MaskNone)
		h.Mcns = append(h.Mcns, mn)
	}
	h.Driver.Start()
	return h.Mcns
}

// AttachNIC gives the host a 10GbE NIC on the given link with the given
// LAN address, and wires it as the MCN forwarding engine's uplink (F4).
func (h *Host) AttachNIC(link *ethdev.Link, ip netstack.IP, macID uint32) *netstack.Iface {
	cfg := ethdev.DefaultConfig(h.Name+"/eth0", netstack.NewMAC(macID))
	h.NIC = ethdev.New(h.K, h.CPU, h.Channels[0], h.Stack, cfg, link)
	ifc := h.Stack.AddIface(h.NIC, ip, netstack.Mask24)
	if h.Driver != nil {
		h.Driver.SetUplink(h.NIC)
	}
	return ifc
}
