// Package memmap models the host physical address layout relevant to MCN:
// cacheline interleaving of the physical address space across memory
// channels, and the interleave-aware copy schedule that the paper's
// memcpy_to_mcn / memcpy_from_mcn functions implement (Sec. III-B, Fig. 6).
//
// With channel interleaving, successive cachelines of the host physical
// address space rotate across the host's memory controllers. A naive memcpy
// into the region where an MCN DIMM's SRAM buffer is mapped would therefore
// scatter the packet bytes across DIMMs on *different* channels. The MCN
// driver instead walks host addresses with a stride of
// lineBytes*numChannels, so every burst lands on the one channel (and DIMM)
// that holds the SRAM buffer.
package memmap

import "fmt"

// LineBytes is the interleaving granularity: one CPU cacheline / one DDR
// burst of a x64 DIMM (8 beats by 8 bytes).
const LineBytes = 64

// Interleave describes cacheline interleaving across a number of channels.
type Interleave struct {
	Channels int
}

// Channel returns the memory channel that owns the cacheline containing
// addr.
func (iv Interleave) Channel(addr uint64) int {
	return int(addr / LineBytes % uint64(iv.Channels))
}

// ChannelOffset returns the address of addr within its channel's local
// (un-interleaved) address space.
func (iv Interleave) ChannelOffset(addr uint64) uint64 {
	line := addr / LineBytes
	localLine := line / uint64(iv.Channels)
	return localLine*LineBytes + addr%LineBytes
}

// HostAddr is the inverse of (Channel, ChannelOffset): it maps a channel's
// local address back to the host physical address.
func (iv Interleave) HostAddr(channel int, channelOff uint64) uint64 {
	localLine := channelOff / LineBytes
	line := localLine*uint64(iv.Channels) + uint64(channel)
	return line*LineBytes + channelOff%LineBytes
}

// Region is a range of a (host or device) physical address space.
type Region struct {
	Base uint64
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// Overlaps reports whether two regions share any address.
func (r Region) Overlaps(o Region) bool { return r.Base < o.End() && o.Base < r.End() }

func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x)", r.Base, r.End())
}

// CopyPlan describes a driver-level bulk copy between the host address
// space and one MCN DIMM's SRAM window in terms of the memory-transaction
// mix it generates. It is what the cost model consumes.
type CopyPlan struct {
	Bytes int
	// Bursts is the number of LineBytes-granularity transactions on the
	// target DIMM's channel (write-combining on TX, cacheable reads on
	// RX give full-line transactions).
	Bursts int
	// WordAccesses is the number of 8-byte transactions when the mapping
	// is uncacheable without write combining (the naive ioremap case).
	WordAccesses int
}

// PlanCopy computes the transaction mix for an n-byte MCN copy. When
// writeCombining is true the copy proceeds in full cachelines; otherwise it
// degrades to 8-byte uncached accesses (Sec. III-B "Memory mapping unit").
func PlanCopy(n int, writeCombining bool) CopyPlan {
	if n < 0 {
		panic("memmap: negative copy size")
	}
	p := CopyPlan{Bytes: n}
	if writeCombining {
		p.Bursts = (n + LineBytes - 1) / LineBytes
	} else {
		p.WordAccesses = (n + 7) / 8
	}
	return p
}

// InterleavedCopy emulates memcpy_to_mcn: it copies src into dst starting
// at dstOff, where dst is the target DIMM's *local* view of its SRAM and the
// copy must walk host addresses with the interleave stride. It returns the
// host physical addresses touched, in order, given the SRAM window's first
// host address hostBase (which must map to the DIMM's channel). The data
// movement itself is performed on the provided byte slices so tests can
// verify placement end to end.
func InterleavedCopy(iv Interleave, hostBase uint64, dst []byte, dstOff int, src []byte) []uint64 {
	if iv.Channels < 1 {
		panic("memmap: interleave with no channels")
	}
	ch := iv.Channel(hostBase)
	base := iv.ChannelOffset(hostBase)
	addrs := make([]uint64, 0, len(src)/LineBytes+1)
	for i := 0; i < len(src); {
		local := base + uint64(dstOff+i)
		host := iv.HostAddr(ch, local)
		addrs = append(addrs, host)
		// Copy up to the end of this cacheline.
		lineEnd := int(local/LineBytes+1)*LineBytes - int(local)
		n := lineEnd
		if rem := len(src) - i; n > rem {
			n = rem
		}
		copy(dst[dstOff+i:], src[i:i+n])
		i += n
	}
	return addrs
}
