package memmap

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestChannelRoundRobin(t *testing.T) {
	iv := Interleave{Channels: 2}
	// Fig. 6: consecutive cachelines alternate between channels.
	for line := 0; line < 8; line++ {
		addr := uint64(line * LineBytes)
		if got, want := iv.Channel(addr), line%2; got != want {
			t.Fatalf("line %d -> channel %d, want %d", line, got, want)
		}
	}
}

func TestChannelOffsetDensePerChannel(t *testing.T) {
	iv := Interleave{Channels: 4}
	// Within one channel, successive owned lines have successive local
	// offsets: the DIMM sees a dense address space.
	for i := 0; i < 16; i++ {
		addr := uint64((i*4 + 1) * LineBytes) // all lines on channel 1
		if iv.Channel(addr) != 1 {
			t.Fatalf("addr %#x not on channel 1", addr)
		}
		if got, want := iv.ChannelOffset(addr), uint64(i*LineBytes); got != want {
			t.Fatalf("ChannelOffset(%#x) = %#x, want %#x", addr, got, want)
		}
	}
}

func TestHostAddrInverseProperty(t *testing.T) {
	// Property: HostAddr(Channel(a), ChannelOffset(a)) == a for any
	// address and channel count.
	f := func(addr uint64, chRaw uint8) bool {
		channels := int(chRaw)%8 + 1
		iv := Interleave{Channels: channels}
		addr %= 1 << 40
		return iv.HostAddr(iv.Channel(addr), iv.ChannelOffset(addr)) == addr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChannelPartitionProperty(t *testing.T) {
	// Property: the (channel, offset) decomposition is injective — two
	// distinct addresses never collide.
	f := func(a, b uint64, chRaw uint8) bool {
		channels := int(chRaw)%8 + 1
		iv := Interleave{Channels: channels}
		a %= 1 << 40
		b %= 1 << 40
		if a == b {
			return true
		}
		return !(iv.Channel(a) == iv.Channel(b) && iv.ChannelOffset(a) == iv.ChannelOffset(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRegion(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x100}
	if !r.Contains(0x1000) || !r.Contains(0x10ff) || r.Contains(0x1100) || r.Contains(0xfff) {
		t.Fatal("Contains is wrong at boundaries")
	}
	if !r.Overlaps(Region{Base: 0x10ff, Size: 1}) {
		t.Fatal("adjacent-overlap should be true")
	}
	if r.Overlaps(Region{Base: 0x1100, Size: 0x10}) {
		t.Fatal("touching regions do not overlap")
	}
}

func TestPlanCopy(t *testing.T) {
	p := PlanCopy(1500, true)
	if p.Bursts != 24 || p.WordAccesses != 0 { // ceil(1500/64)=24
		t.Fatalf("WC plan = %+v", p)
	}
	p = PlanCopy(1500, false)
	if p.WordAccesses != 188 || p.Bursts != 0 { // ceil(1500/8)=188
		t.Fatalf("uncached plan = %+v", p)
	}
	if p := PlanCopy(0, true); p.Bursts != 0 {
		t.Fatalf("empty plan = %+v", p)
	}
}

func TestInterleavedCopyPlacesDataAndStaysOnChannel(t *testing.T) {
	iv := Interleave{Channels: 2}
	hostBase := uint64(3 * LineBytes) // a line owned by channel 1
	dst := make([]byte, 4096)
	src := make([]byte, 1500)
	for i := range src {
		src[i] = byte(i * 7)
	}
	addrs := InterleavedCopy(iv, hostBase, dst, 10, src)
	if !bytes.Equal(dst[10:10+1500], src) {
		t.Fatal("copy did not place bytes at the DIMM-local offset")
	}
	if len(addrs) == 0 {
		t.Fatal("no host addresses generated")
	}
	ch := iv.Channel(hostBase)
	for _, a := range addrs {
		if iv.Channel(a) != ch {
			t.Fatalf("host address %#x left channel %d: interleave-aware copy is broken", a, ch)
		}
	}
	// The host addresses stride by LineBytes*Channels once line-aligned.
	for i := 2; i < len(addrs); i++ {
		if addrs[i]-addrs[i-1] != uint64(LineBytes*iv.Channels) {
			t.Fatalf("stride %d at %d, want %d", addrs[i]-addrs[i-1], i, LineBytes*iv.Channels)
		}
	}
}

func TestInterleavedCopyRoundTripProperty(t *testing.T) {
	// Property: copying in and reading back with the same mapping is the
	// identity, regardless of offset, size and channel count.
	f := func(seed []byte, off uint16, chRaw uint8) bool {
		if len(seed) == 0 {
			return true
		}
		channels := int(chRaw)%4 + 1
		iv := Interleave{Channels: channels}
		dst := make([]byte, 1<<16)
		o := int(off) % 1024
		hostBase := uint64(channels-1) * LineBytes
		InterleavedCopy(iv, hostBase, dst, o, seed)
		return bytes.Equal(dst[o:o+len(seed)], seed)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
