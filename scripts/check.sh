#!/usr/bin/env sh
# Full local gate: build, vet, and the complete test suite under the race
# detector. Pass -short (or any other go test flags) as arguments to trim
# the run; the chaos integration test skips itself in -short mode.
set -e

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

# Targeted race gate on the serving tier, its admission plane, the
# replication plane, the observability plane and the mcnt transport
# first: these packages carry the concurrency-heavy
# breaker/loadgen/forwarder/tracer/retransmit interplay, so a race there
# fails fast before the full suite spins up.
echo ">> go test -race ./internal/admit ./internal/serve ./internal/replica ./internal/obs ./internal/mcnt"
go test -race ./internal/admit ./internal/serve ./internal/replica ./internal/obs ./internal/mcnt

echo ">> go test -race $* ./..."
go test -race "$@" ./...

./scripts/cover.sh

echo "check: OK"
