#!/usr/bin/env sh
# Full local gate: build, vet, and the complete test suite under the race
# detector. Pass -short (or any other go test flags) as arguments to trim
# the run; the chaos integration test skips itself in -short mode.
set -e

cd "$(dirname "$0")/.."

echo ">> go build ./..."
go build ./...

echo ">> go vet ./..."
go vet ./...

# Targeted race gate on the sim kernel, the serving tier, its admission
# plane, the replication plane, the observability plane (spans, registry
# and the windowed timeline/burn monitor), the mcnt transport and the
# near-memory operator layer first: the kernel's token-passing handoff
# plus the concurrency-heavy breaker/loadgen/forwarder/tracer/retransmit
# interplay mean a race in these packages fails fast before the full
# suite spins up.
echo ">> go test -race ./internal/sim ./internal/admit ./internal/serve ./internal/replica ./internal/obs ./internal/mcnt ./internal/nmop"
go test -race ./internal/sim ./internal/admit ./internal/serve ./internal/replica ./internal/obs ./internal/mcnt ./internal/nmop

# The continuous-telemetry suite crosses package lines (serve hooks, exp
# A/B, the root chaos replay gate), so race it explicitly as well: these
# -run filters add the timeline tests that live outside the packages
# above at a few seconds' cost.
echo ">> go test -race -run 'Timeline|BurnMonitor' ./internal/exp ."
go test -race -run 'Timeline|BurnMonitor' ./internal/exp .

# The long simulation packages (contutto's NIOS-II bulk transfer, the MPI
# suite) multiply by the race detector's overhead; on a loaded machine
# they can brush go test's default 10-minute per-binary timeout, so the
# full race pass gets an explicit generous one.
echo ">> go test -race -timeout 30m $* ./..."
go test -race -timeout 30m "$@" ./...

./scripts/cover.sh

echo "check: OK"
