#!/usr/bin/env sh
# Serving benchmark: run the latency-vs-throughput sweep at a fixed seed
# and write BENCH_serve.json (qps at the p99 SLO per topology, plus the
# full curves). The sweep is deterministic — same seed, same JSON, bit for
# bit — so the artifact is diffable across commits.
#
# Usage: scripts/bench.sh [seed]   (default 42)
set -e

cd "$(dirname "$0")/.."

SEED="${1:-42}"
OUT="BENCH_serve.json"

echo ">> mcn-serve -bench -seed $SEED -out $OUT"
go run ./cmd/mcn-serve -bench -seed "$SEED" -out "$OUT"

echo ">> $OUT"
cat "$OUT"

# Simulator wall-clock benchmark: events/sec and requests/sec over the
# canonical topologies. The kernel counters inside are deterministic for
# the seed; only the wall rates depend on the machine.
WALLOUT="BENCH_wallclock.json"
echo ">> mcn-serve -wallbench -seed $SEED -out $WALLOUT"
go run ./cmd/mcn-serve -wallbench -seed "$SEED" -out "$WALLOUT"

echo ">> $WALLOUT"
go run ./cmd/mcn-serve -wallcheck "$WALLOUT"
