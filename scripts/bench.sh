#!/usr/bin/env sh
# Serving benchmark: run the latency-vs-throughput sweep at a fixed seed
# and write BENCH_serve.json (qps at the p99 SLO per topology, plus the
# full curves). The sweep is deterministic — same seed, same JSON, bit for
# bit — so the artifact is diffable across commits.
#
# Usage: scripts/bench.sh [seed]   (default 42)
set -e

cd "$(dirname "$0")/.."

SEED="${1:-42}"
OUT="BENCH_serve.json"

echo ">> mcn-serve -bench -seed $SEED -out $OUT"
go run ./cmd/mcn-serve -bench -seed "$SEED" -out "$OUT"

echo ">> $OUT"
cat "$OUT"
