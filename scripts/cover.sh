#!/usr/bin/env sh
# Per-package coverage gate: runs the suite in -short mode with coverage
# and fails if any package regresses below its floor. Floors sit a few
# points under the levels the suite actually reaches so routine churn
# passes but deleting a test file does not. This pass also executes every
# committed fuzz seed corpus (native Go fuzz targets run their corpora as
# ordinary tests).
set -e

cd "$(dirname "$0")/.."

out="$(mktemp)"
trap 'rm -f "$out"' EXIT

echo ">> go test -short -cover ./..."
if ! go test -short -cover ./... >"$out" 2>&1; then
    cat "$out"
    echo "cover: tests failed"
    exit 1
fi
cat "$out"

awk '
BEGIN {
    pre = "github.com/mcn-arch/mcn"
    f[pre] = 27
    f[pre "/internal/admit"] = 90
    f[pre "/internal/cluster"] = 72
    f[pre "/internal/contutto"] = 97
    f[pre "/internal/core"] = 77
    f[pre "/internal/cpu"] = 85
    f[pre "/internal/dram"] = 89
    f[pre "/internal/energy"] = 97
    f[pre "/internal/ethdev"] = 86
    f[pre "/internal/exp"] = 82
    f[pre "/internal/faults"] = 76
    f[pre "/internal/kvstore"] = 83
    f[pre "/internal/mapreduce"] = 89
    f[pre "/internal/mcnfast"] = 89
    f[pre "/internal/mcnt"] = 85
    f[pre "/internal/memmap"] = 88
    f[pre "/internal/mpi"] = 84
    f[pre "/internal/netstack"] = 84
    f[pre "/internal/nmop"] = 85
    f[pre "/internal/node"] = 81
    f[pre "/internal/npb"] = 94
    f[pre "/internal/obs"] = 85
    f[pre "/internal/replica"] = 85
    f[pre "/internal/serve"] = 81
    f[pre "/internal/sim"] = 94
    f[pre "/internal/sram"] = 88
    f[pre "/internal/stats"] = 83
    f[pre "/internal/trace"] = 79
    f[pre "/internal/workloads"] = 92
}
$1 == "ok" && /coverage:/ {
    pct = ""
    for (i = 1; i <= NF; i++) {
        if ($i == "coverage:") { pct = $(i + 1); sub(/%/, "", pct) }
    }
    if ($2 in f && pct != "") {
        seen[$2] = 1
        if (pct + 0 < f[$2]) {
            printf "cover: FAIL %-45s %5.1f%% < floor %d%%\n", $2, pct, f[$2]
            bad = 1
        } else {
            printf "cover: ok   %-45s %5.1f%% (floor %d%%)\n", $2, pct, f[$2]
        }
    }
}
END {
    for (p in f) {
        if (!(p in seen)) {
            printf "cover: FAIL %s reported no coverage (package gone or tests deleted?)\n", p
            bad = 1
        }
    }
    exit bad
}
' "$out"

echo "cover: OK"
