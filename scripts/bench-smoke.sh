#!/usr/bin/env sh
# Bench smoke: a tiny deterministic slice of the serving benchmark, fast
# enough for the local gate. It sweeps one low and one mid rate across
# every topology (including the admitted one) and runs one admitted
# single point, so a regression in the bench pipeline — topology
# construction, suffix parsing, admission plane, JSON rendering — fails
# here instead of in the full scripts/bench.sh artifact run.
#
# Usage: scripts/bench-smoke.sh [seed]   (default 42)
set -e

cd "$(dirname "$0")/.."

SEED="${1:-42}"

echo ">> mcn-serve -curve -rates 200000,800000 -seed $SEED -check BENCH_serve.json"
go run ./cmd/mcn-serve -curve -rates 200000,800000 -seed "$SEED" -check BENCH_serve.json

echo ">> mcn-serve -topo mcn5+batch+admit -rate 200000 -seed $SEED -json"
go run ./cmd/mcn-serve -topo mcn5+batch+admit -rate 200000 -seed "$SEED" -json -out /tmp/mcn-smoke-plain.json

# Replicated-flap drift guard: re-run the replication A/B at the artifact
# seed and fail if the availability or convergence numbers drift from the
# committed BENCH_serve.json.
echo ">> mcn-serve -replcheck BENCH_serve.json -seed $SEED"
go run ./cmd/mcn-serve -replcheck BENCH_serve.json -seed "$SEED"

# mcnt transport guard: one low-rate point on the mcnt topology with the
# observability plane on must report telemetry byte-identical to the
# untraced run (the frame correlator observes, never perturbs), covering
# the transport swap end to end — dial/accept over the fabric, framing,
# credit returns — at smoke cost.
echo ">> mcn-serve -topo mcn5+batch+mcnt -rate 200000 -seed $SEED (transport + zero-perturbation guard)"
go run ./cmd/mcn-serve -topo mcn5+batch+mcnt -rate 200000 -seed "$SEED" -json -out /tmp/mcn-smoke-mcnt-plain.json
go run ./cmd/mcn-serve -topo mcn5+batch+mcnt -rate 200000 -seed "$SEED" -json \
	-trace /tmp/mcn-smoke-mcnt-trace.json -out /tmp/mcn-smoke-mcnt-traced.json
cmp /tmp/mcn-smoke-mcnt-plain.json /tmp/mcn-smoke-mcnt-traced.json
test -s /tmp/mcn-smoke-mcnt-trace.json
rm -f /tmp/mcn-smoke-mcnt-plain.json /tmp/mcn-smoke-mcnt-traced.json /tmp/mcn-smoke-mcnt-trace.json

# Trace-overhead guard: the same point with the observability plane on
# must report byte-identical telemetry (tracing charges no simulated
# time), and the Perfetto/metrics artifacts must be written and non-empty.
echo ">> mcn-serve -topo mcn5+batch+admit ... -trace/-metrics (zero-perturbation guard)"
go run ./cmd/mcn-serve -topo mcn5+batch+admit -rate 200000 -seed "$SEED" -json \
	-trace /tmp/mcn-smoke-trace.json -metrics /tmp/mcn-smoke-metrics.json \
	-out /tmp/mcn-smoke-traced.json
cmp /tmp/mcn-smoke-plain.json /tmp/mcn-smoke-traced.json
test -s /tmp/mcn-smoke-trace.json
test -s /tmp/mcn-smoke-metrics.json

# Timeline zero-perturbation guard: attaching the windowed timeline must
# not move a single simulated event either — the timeline-on run's
# telemetry is byte-identical to the plain run — and the timeline
# artifact must be written, non-empty, and carry its windows array.
echo ">> mcn-serve -topo mcn5+batch+admit ... -timeline (timeline zero-perturbation guard)"
go run ./cmd/mcn-serve -topo mcn5+batch+admit -rate 200000 -seed "$SEED" -json \
	-timeline /tmp/mcn-smoke-timeline.json -out /tmp/mcn-smoke-timelined.json
cmp /tmp/mcn-smoke-plain.json /tmp/mcn-smoke-timelined.json
test -s /tmp/mcn-smoke-timeline.json
grep -q '"windows"' /tmp/mcn-smoke-timeline.json

cat /tmp/mcn-smoke-plain.json
rm -f /tmp/mcn-smoke-plain.json /tmp/mcn-smoke-traced.json /tmp/mcn-smoke-trace.json /tmp/mcn-smoke-metrics.json \
	/tmp/mcn-smoke-timelined.json /tmp/mcn-smoke-timeline.json

# Near-memory operator guards. First the byte-identity gate: a run whose
# config mentions the ops knobs but leaves them off must produce exactly
# the telemetry of a run that never heard of the subsystem (covered by
# the committed curves above staying point-for-point — the curve check
# runs with ops off). Here, one "+ops" point proves the suffix plumbing
# carries operator traffic end to end, and -opscheck re-runs the
# host-vs-dimm selectivity smoke sweep against the committed artifact:
# the >=5x byte savings at 10% selectivity, the auto mode picking the
# cheap path at both ends, and every byte/decision tally drift-free.
# Skipped when the artifact predates the ops section.
echo ">> mcn-serve -topo mcn5+batch+ops -rate 200000 -seed $SEED -json (operator traffic smoke)"
go run ./cmd/mcn-serve -topo mcn5+batch+ops -rate 200000 -seed "$SEED" -json -out /tmp/mcn-smoke-ops.json
grep -q '"ops"' /tmp/mcn-smoke-ops.json
rm -f /tmp/mcn-smoke-ops.json
if grep -q '"ops"' BENCH_serve.json; then
	echo ">> mcn-serve -opscheck BENCH_serve.json -seed $SEED"
	go run ./cmd/mcn-serve -opscheck BENCH_serve.json -seed "$SEED"
else
	echo ">> BENCH_serve.json has no ops section; skipping -opscheck (make bench to regenerate)"
fi

# Simulator wall-clock drift gate: re-run the cheapest wall-bench point
# per topology and compare against the committed BENCH_wallclock.json.
# The deterministic kernel counters (events, pushes, switches, ...) must
# match exactly — a mismatch means the event stream itself changed and
# the artifact needs regenerating (scripts/bench.sh). The events/sec rate
# only has to stay within 15%, since it depends on the machine. Skipped
# when the artifact has not been generated yet.
if [ -f BENCH_wallclock.json ]; then
	echo ">> mcn-serve -wallcheck BENCH_wallclock.json"
	go run ./cmd/mcn-serve -wallcheck BENCH_wallclock.json
else
	echo ">> BENCH_wallclock.json missing; skipping the wall-clock drift gate (make bench-wallclock to create it)"
fi

echo "bench-smoke: OK"
