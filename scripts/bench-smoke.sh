#!/usr/bin/env sh
# Bench smoke: a tiny deterministic slice of the serving benchmark, fast
# enough for the local gate. It sweeps one low and one mid rate across
# every topology (including the admitted one) and runs one admitted
# single point, so a regression in the bench pipeline — topology
# construction, suffix parsing, admission plane, JSON rendering — fails
# here instead of in the full scripts/bench.sh artifact run.
#
# Usage: scripts/bench-smoke.sh [seed]   (default 42)
set -e

cd "$(dirname "$0")/.."

SEED="${1:-42}"

echo ">> mcn-serve -curve -rates 200000,800000 -seed $SEED"
go run ./cmd/mcn-serve -curve -rates 200000,800000 -seed "$SEED"

echo ">> mcn-serve -topo mcn5+batch+admit -rate 200000 -seed $SEED -json"
go run ./cmd/mcn-serve -topo mcn5+batch+admit -rate 200000 -seed "$SEED" -json

echo "bench-smoke: OK"
