package mcn_test

import (
	"fmt"

	"github.com/mcn-arch/mcn"
)

// ExampleNewMcnServer builds an MCN server and pings a DIMM from the host
// over the memory channel.
func ExampleNewMcnServer() {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 2, mcn.MCN1.Options())
	host := s.Endpoints()[0]
	dimm := s.McnEndpoints()[0]

	var ok bool
	k.Go("ping", func(p *mcn.Proc) {
		_, ok = host.Node.Stack.Ping(p, dimm.IP, 56, mcn.Second)
	})
	k.RunFor(10 * mcn.Millisecond)
	fmt.Println("ping over the memory channel:", ok)
	// Output: ping over the memory channel: true
}

// ExampleLaunchMPI runs a two-rank MPI program spanning the host and an
// MCN DIMM — the framework cannot tell the difference.
func ExampleLaunchMPI() {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 1, mcn.MCN3.Options())
	w := mcn.LaunchMPI(k, s.Endpoints(), 7000, func(r *mcn.Rank) {
		if r.ID == 0 {
			fmt.Printf("rank 0 heard: %s\n", r.RecvData(1))
		} else {
			r.SendData(0, []byte("hello from the DIMM"))
		}
	})
	for i := 0; i < 100 && !w.Done(); i++ {
		k.RunFor(10 * mcn.Millisecond)
	}
	// Output: rank 0 heard: hello from the DIMM
}

// ExampleOptLevel_Options expands a Table I optimization level into its
// mechanism set.
func ExampleOptLevel_Options() {
	o := mcn.MCN3.Options()
	fmt.Printf("%v: interrupt=%v checksum-bypass=%v mtu=%d tso=%v dma=%v\n",
		mcn.MCN3, o.DimmInterrupt, o.ChecksumBypass, o.MTU, o.TSO, o.DMA)
	// Output: mcn3: interrupt=true checksum-bypass=true mtu=9000 tso=false dma=false
}

// ExampleRunMapReduce counts words across MCN DIMMs with the bundled
// MapReduce framework.
func ExampleRunMapReduce() {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 2, mcn.MCN3.Options())
	job := mcn.MapReduceJob{
		Name:  "wc",
		Input: []string{"near memory", "memory channel network", "memory"},
		Map: func(split string, emit func(k, v string)) {
			for _, w := range splitWords(split) {
				emit(w, "1")
			}
		},
		Reduce: func(k string, vs []string) string { return fmt.Sprint(len(vs)) },
	}
	var out map[string]string
	w := mcn.LaunchMPI(k, s.Endpoints(), 7000, func(r *mcn.Rank) {
		if res := mcn.RunMapReduce(r, job); r.ID == 0 {
			out = res
		}
	})
	for i := 0; i < 100 && !w.Done(); i++ {
		k.RunFor(10 * mcn.Millisecond)
	}
	fmt.Println("memory:", out["memory"])
	// Output: memory: 3
}

func splitWords(s string) []string {
	var out []string
	start := -1
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != ' ' {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	return out
}
