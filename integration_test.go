// Integration tests over the public API: each test stands up a whole
// system (server, cluster, or prototype) and exercises an end-to-end
// behavior the paper claims.
package mcn_test

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/mcn-arch/mcn"
)

func TestPublicAPIQuickstartFlow(t *testing.T) {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 4, mcn.MCN5.Options())
	host := s.Endpoints()[0]
	dimm := s.McnEndpoints()[0]

	rtts := mcn.PingSweep(k, host, dimm.IP, []int{16, 1024}, 3)
	const total = 1 << 20
	var got int
	k.Go("server", func(p *mcn.Proc) {
		l, err := dimm.Node.Stack.Listen(5001)
		if err != nil {
			panic(err)
		}
		c, _ := l.Accept(p)
		got = c.RecvN(p, total)
	})
	k.Go("client", func(p *mcn.Proc) {
		c, err := host.Node.Stack.Connect(p, dimm.IP, 5001)
		if err != nil {
			panic(err)
		}
		c.SendN(p, total)
	})
	k.RunFor(2 * mcn.Second)

	if rtts[16] == 0 || rtts[1024] <= rtts[16] {
		t.Fatalf("ping sweep wrong: %v", rtts)
	}
	if got != total {
		t.Fatalf("stream moved %d bytes", got)
	}
}

func TestApplicationTransparency(t *testing.T) {
	// The paper's core claim, end to end through the public API: one MPI
	// program, bit-identical results on a 10GbE cluster and on an MCN
	// server.
	prog := func(results *[]string) mcn.Program {
		return func(r *mcn.Rank) {
			if r.ID == 0 {
				for i := 1; i < r.W.Size(); i++ {
					*results = append(*results, string(r.RecvData(i)))
				}
			} else {
				r.SendData(0, []byte("rank-"+strconv.Itoa(r.ID)))
			}
		}
	}

	var ethResults []string
	k1 := mcn.NewKernel()
	c := mcn.NewEthCluster(k1, 3)
	w1 := mcn.LaunchMPI(k1, c.Endpoints(), 7000, prog(&ethResults))
	k1.RunFor(30 * mcn.Second)
	if !w1.Done() {
		t.Fatal("cluster job unfinished")
	}

	var mcnResults []string
	k2 := mcn.NewKernel()
	s := mcn.NewMcnServer(k2, 2, mcn.MCN0.Options())
	w2 := mcn.LaunchMPI(k2, s.Endpoints(), 7000, prog(&mcnResults))
	for i := 0; i < 300 && !w2.Done(); i++ {
		k2.RunFor(100 * mcn.Millisecond)
	}
	if !w2.Done() {
		t.Fatal("MCN job unfinished")
	}

	if strings.Join(ethResults, ",") != strings.Join(mcnResults, ",") {
		t.Fatalf("results diverge: %v vs %v", ethResults, mcnResults)
	}
}

func TestMapReduceOnPublicAPI(t *testing.T) {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 2, mcn.MCN3.Options())
	job := mcn.MapReduceJob{
		Name:  "squares",
		Input: []string{"1 2 3", "4 5", "6"},
		Map: func(split string, emit func(k, v string)) {
			for _, f := range strings.Fields(split) {
				n, _ := strconv.Atoi(f)
				emit("sum-of-squares", strconv.Itoa(n*n))
			}
		},
		Reduce: func(key string, vs []string) string {
			sum := 0
			for _, v := range vs {
				n, _ := strconv.Atoi(v)
				sum += n
			}
			return strconv.Itoa(sum)
		},
	}
	var out map[string]string
	w := mcn.LaunchMPI(k, s.Endpoints(), 7000, func(r *mcn.Rank) {
		if res := mcn.RunMapReduce(r, job); r.ID == 0 {
			out = res
		}
	})
	for i := 0; i < 300 && !w.Done(); i++ {
		k.RunFor(100 * mcn.Millisecond)
	}
	if !w.Done() {
		t.Fatal("job unfinished")
	}
	if out["sum-of-squares"] != "91" { // 1+4+9+16+25+36
		t.Fatalf("got %v", out)
	}
}

func TestKVAndFastPathOnPublicAPI(t *testing.T) {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 1, mcn.MCN1.Options())
	srv := mcn.NewKVServer(k, s.McnEndpoints()[0], 11211)
	he, me := mcn.OpenFastChannel(k, s.Host, s.Mcns[0])

	k.Go("fast-echo", func(p *mcn.Proc) {
		for {
			m := me.Recv(p)
			if m == nil {
				return
			}
			me.Send(p, m)
		}
	})
	var kvOK, fastOK bool
	k.Go("client", func(p *mcn.Proc) {
		c, err := mcn.DialKV(p, s.Endpoints()[0], s.McnEndpoints()[0].IP, 11211)
		if err != nil {
			panic(err)
		}
		c.Set(p, "k", []byte("v"))
		got, ok, _ := c.Get(p, "k")
		kvOK = ok && bytes.Equal(got, []byte("v"))

		he.Send(p, []byte("zoom"))
		fastOK = string(he.Recv(p)) == "zoom"
	})
	k.RunFor(5 * mcn.Second)
	if !kvOK || !fastOK {
		t.Fatalf("kv=%v fast=%v", kvOK, fastOK)
	}
	if srv.Sets != 1 || srv.Gets != 1 {
		t.Fatalf("server stats %d/%d", srv.Sets, srv.Gets)
	}
}

func TestMcntOnPublicAPI(t *testing.T) {
	// The transport is application-transparent through the facade: the
	// same MPI program, bit-identical results with the memory-channel
	// hops on TCP and on mcnt — only the endpoints' Transport changes.
	prog := func(results *[]string) mcn.Program {
		return func(r *mcn.Rank) {
			if r.ID == 0 {
				for i := 1; i < r.W.Size(); i++ {
					*results = append(*results, string(r.RecvData(i)))
				}
			} else {
				r.SendData(0, []byte("rank-"+strconv.Itoa(r.ID)))
			}
		}
	}

	run := func(useMcnt bool) []string {
		var results []string
		k := mcn.NewKernel()
		s := mcn.NewMcnServer(k, 2, mcn.MCN5.Options())
		eps := s.Endpoints()
		if useMcnt {
			fab := mcn.AttachMcnt(k, s.Host, mcn.DefaultMcntParams())
			for i := range eps {
				eps[i].Transport = fab.TransportFor(eps[i].Node)
			}
		}
		w := mcn.LaunchMPI(k, eps, 7000, prog(&results))
		for i := 0; i < 300 && !w.Done(); i++ {
			k.RunFor(100 * mcn.Millisecond)
		}
		if !w.Done() {
			t.Fatalf("MPI job unfinished (mcnt=%v)", useMcnt)
		}
		return results
	}

	tcp, mcnt := run(false), run(true)
	if strings.Join(tcp, ",") != strings.Join(mcnt, ",") {
		t.Fatalf("results diverge across transports: %v vs %v", tcp, mcnt)
	}

	// KV over mcnt through the facade: the codec is identical over either
	// transport, so a client on the mcnt fabric serves a kvstore shard
	// without any kvstore-side change.
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 1, mcn.MCN5.Options())
	fab := mcn.AttachMcnt(k, s.Host, mcn.DefaultMcntParams())
	sep := s.McnEndpoints()[0]
	sep.Transport = fab.TransportFor(sep.Node)
	mcn.NewKVServer(k, sep, 11211)
	cep := s.Endpoints()[0]
	cep.Transport = fab.TransportFor(cep.Node)
	var kvOK bool
	k.Go("client", func(p *mcn.Proc) {
		c, err := mcn.DialKV(p, cep, sep.IP, 11211)
		if err != nil {
			panic(err)
		}
		c.Set(p, "k", []byte("v"))
		got, ok, _ := c.Get(p, "k")
		kvOK = ok && bytes.Equal(got, []byte("v"))
	})
	k.RunFor(5 * mcn.Second)
	if !kvOK {
		t.Fatal("kv get/set over mcnt failed")
	}
	if fab.Streams() == 0 {
		t.Fatal("kv traffic did not ride the mcnt fabric")
	}
	if drift := fab.CheckAccounting(); len(drift) != 0 {
		t.Fatalf("credit accounting drift after kv run: %v", drift)
	}
}

func TestTracerOnPublicAPI(t *testing.T) {
	k := mcn.NewKernel()
	s := mcn.NewMcnServer(k, 1, mcn.MCN0.Options())
	tap := mcn.NewTracer(64)
	s.Mcns[0].Stack.Tap = tap
	k.Go("ping", func(p *mcn.Proc) {
		s.Host.Stack.Ping(p, s.Mcns[0].IP, 32, mcn.Second)
	})
	k.RunFor(50 * mcn.Millisecond)
	if !strings.Contains(tap.Dump(), "ICMP echo request") {
		t.Fatalf("capture missing ping:\n%s", tap.Dump())
	}
}

func TestOptLevelLadderOnPublicAPI(t *testing.T) {
	// Bandwidth must not regress as optimizations stack (allowing small
	// noise), measured through the public API only.
	bw := func(l mcn.OptLevel) float64 {
		k := mcn.NewKernel()
		s := mcn.NewMcnServer(k, 4, l.Options())
		res := mcn.Iperf(k, s.Endpoints()[0], s.McnEndpoints()[:2], 5201,
			2*mcn.Millisecond, 8*mcn.Millisecond)
		k.RunFor(20 * mcn.Millisecond)
		return res.GoodputBps
	}
	b0, b3, b5 := bw(mcn.MCN0), bw(mcn.MCN3), bw(mcn.MCN5)
	if !(b3 > b0*1.2) {
		t.Errorf("mcn3 (%.2g) should clearly beat mcn0 (%.2g)", b3, b0)
	}
	if !(b5 > b0) {
		t.Errorf("mcn5 (%.2g) should beat mcn0 (%.2g)", b5, b0)
	}
}

func TestObservabilityOnPublicAPI(t *testing.T) {
	// The facade exposes the observability plane: a traced serving run
	// produces spans whose phases telescope to end-to-end latency, a
	// metrics snapshot, and the Perfetto artifact.
	r := mcn.ServeTraced(1, "mcn5", 100e3, 0, 4)
	if r.Result.N == 0 || r.Tracer.Finished == 0 {
		t.Fatalf("traced run: n=%d finished=%d", r.Result.N, r.Tracer.Finished)
	}
	for _, sp := range r.Tracer.Spans() {
		var sum int64
		for _, d := range sp.Breakdown() {
			sum += int64(d)
		}
		if want := int64(sp.Done.Sub(sp.Arrival)); sum != want {
			t.Fatalf("span %d: phases sum to %d, e2e %d", sp.ID, sum, want)
		}
	}
	var trace bytes.Buffer
	if err := r.Tracer.WritePerfetto(&trace); err != nil || trace.Len() == 0 {
		t.Fatalf("perfetto export: err=%v len=%d", err, trace.Len())
	}
	var metrics bytes.Buffer
	if err := r.Snapshot.WriteJSON(&metrics); err != nil || metrics.Len() == 0 {
		t.Fatalf("metrics export: err=%v len=%d", err, metrics.Len())
	}

	// Hand-built tracer + registry through the facade constructors.
	tr := mcn.NewSpanTracer(3, 1, 16)
	if s := tr.Sampler("x"); !s.Next() {
		t.Fatal("sampleN 1 must always sample")
	}
	reg := mcn.NewMetricsRegistry()
	reg.Counter("x").Add(2)
	if v, ok := reg.Snapshot(0).Value("x"); !ok || v != 2 {
		t.Fatalf("registry snapshot: %d %v", v, ok)
	}

	// The faulted variant stays deterministic through the facade too.
	f := mcn.ServeTracedFaults(3, "mcn5+batch", 100e3, 8)
	if f.Result.N == 0 {
		t.Fatal("faulted traced run completed nothing")
	}
}
